#include "graph/backend.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "analysis/analyzer.hpp"
#include "bitstream/encoding.hpp"
#include "convert/regenerator.hpp"
#include "core/decorrelator.hpp"
#include "core/desynchronizer.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "engine/chunked_stream.hpp"
#include "engine/session.hpp"
#include "fault/inject.hpp"
#include "graph/seeds.hpp"
#include "kernel/apply.hpp"
#include "obs/probe.hpp"
#include "obs/telemetry.hpp"
#include "opt/optimize.hpp"
#include "rng/lfsr.hpp"

namespace sc::graph {
namespace {

using seeds::Role;
using seeds::derive_seed32;

// ------------------------------------------------------------- shared bits

/// Regenerates both operands from one shared trace with the second
/// comparator complemented, producing SCC = -1 between the outputs.
std::pair<Bitstream, Bitstream> regenerate_complementary(
    const Bitstream& a, const Bitstream& b, rng::RandomSource& source) {
  const std::size_t n = a.size();
  const std::uint32_t mask = static_cast<std::uint32_t>(source.range() - 1);
  const std::uint64_t level_a =
      n == 0 ? 0 : (a.count_ones() * source.range() + n / 2) / n;
  const std::uint64_t level_b =
      n == 0 ? 0 : (b.count_ones() * source.range() + n / 2) / n;
  Bitstream out_a(n);
  Bitstream out_b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = source.next();
    if (r < level_a) out_a.set(i, true);
    // Complemented comparator: uses mask - r, so the 1-regions of the two
    // outputs overlap as little as possible.
    if ((mask - r) < level_b) out_b.set(i, true);
  }
  return {std::move(out_a), std::move(out_b)};
}

/// Stable per-fix seed lane: the operand slot pair, not the fix's
/// positional index in the op's fix list.  Positional lanes would reseed
/// every surviving fix whenever a plan rewrite drops an earlier one
/// (e.g. the optimizer's replan after CSE proving a kPositive pair
/// satisfied), breaking the dedup-only pipeline's bit-identity contract;
/// the slot pair is invariant under such rewrites and unique within an
/// op (operand_a < operand_b < kMaxArity).
unsigned fix_lane(const PairFix& fix) {
  return fix.operand_a * kMaxArity + fix.operand_b;
}

/// In-stream manipulator FSM for a planned fix (nullptr for regeneration
/// kinds, which are not per-cycle transforms).  `node` is the op node's
/// seed_tag, not its id — the tag survives optimizer rewrites, so a plan
/// that only dropped or merged other nodes draws identical aux sequences.
std::unique_ptr<core::PairTransform> make_fix_transform(
    FixKind kind, const ExecConfig& config, NodeId node, unsigned lane) {
  switch (kind) {
    case FixKind::kSynchronizer:
      return std::make_unique<core::Synchronizer>(
          core::Synchronizer::Config{config.sync_depth, false, 0});
    case FixKind::kDesynchronizer:
      return std::make_unique<core::Desynchronizer>(
          core::Desynchronizer::Config{config.sync_depth, false});
    case FixKind::kDecorrelator:
      // The second buffer's source is rotated so the two address schedules
      // stay distinct even if the width-masked seeds alias (lockstep
      // buffers do not decorrelate).
      return std::make_unique<core::Decorrelator>(
          config.shuffle_depth,
          std::make_unique<rng::Lfsr>(
              config.width,
              derive_seed32(config.seed, node, Role::kFixAuxA, lane)),
          std::make_unique<rng::Lfsr>(
              config.width,
              derive_seed32(config.seed, node, Role::kFixAuxB, lane),
              /*rotation=*/3));
    case FixKind::kDecorrelatorChain:
      return std::make_unique<core::DecorrelatorChainLink>(
          config.shuffle_depth,
          std::make_unique<rng::Lfsr>(
              config.width,
              derive_seed32(config.seed, node, Role::kFixAuxA, lane)));
    default:
      return nullptr;
  }
}

/// Whole-stream regeneration fix (counts the operands, then re-encodes).
void apply_regeneration(FixKind kind, Bitstream& a, Bitstream& b,
                        const ExecConfig& config, NodeId node, unsigned lane) {
  switch (kind) {
    case FixKind::kRegenerateShared: {
      rng::Lfsr source(config.width,
                       derive_seed32(config.seed, node, Role::kFixAuxA, lane));
      const auto bus = convert::regenerate_bus_correlated({a, b}, source);
      a = bus[0];
      b = bus[1];
      return;
    }
    case FixKind::kRegenerateDistinct: {
      rng::Lfsr source_a(
          config.width,
          derive_seed32(config.seed, node, Role::kFixAuxA, lane));
      rng::Lfsr source_b(
          config.width,
          derive_seed32(config.seed, node, Role::kFixAuxB, lane));
      a = convert::regenerate(a, source_a);
      b = convert::regenerate(b, source_b);
      return;
    }
    case FixKind::kRegenerateComplementary: {
      rng::Lfsr source(config.width,
                       derive_seed32(config.seed, node, Role::kFixAuxA, lane));
      auto pair = regenerate_complementary(a, b, source);
      a = std::move(pair.first);
      b = std::move(pair.second);
      return;
    }
    default:
      return;
  }
}

// ------------------------------------------------------------ telemetry

/// RNG draws a run makes, modeled exactly from the executed plan: every
/// group trace, per-cycle fix RNG (decorrelator 2/cycle, chain link
/// 1/cycle), regeneration re-encode, and operator-private slot draws one
/// value per cycle from its generator — so the count is a pure function
/// of (program, plan, n) and costs nothing on the hot path.
std::uint64_t modeled_rng_draws(const Program& program,
                                const ProgramPlan& plan, std::size_t n) {
  std::uint64_t per_cycle = 0;
  std::map<unsigned, bool> groups;
  for (NodeId id = 0; id < program.node_count(); ++id) {
    const ProgramNode& node = program.node(id);
    if (node.kind != ProgramNode::Kind::kOp) {
      if (groups.emplace(node.rng_group, true).second) ++per_cycle;
      continue;
    }
    per_cycle += program.def_of(id).rng_slots;
  }
  for (const PairFix& fix : plan.fixes) {
    switch (fix.fix) {
      case FixKind::kDecorrelator:
      case FixKind::kRegenerateDistinct:
        per_cycle += 2;
        break;
      case FixKind::kDecorrelatorChain:
      case FixKind::kRegenerateShared:
      case FixKind::kRegenerateComplementary:
        per_cycle += 1;
        break;
      default:
        break;  // synchronizer / desynchronizer draw no RNG
    }
  }
  return per_cycle * static_cast<std::uint64_t>(n);
}

/// Per-run execution counters shared by the whole-stream and chunked
/// paths.
void record_run_metrics(obs::Telemetry* telemetry, const char* backend,
                        const Program& program, const ProgramPlan& plan,
                        std::size_t n) {
  if (telemetry == nullptr) return;
  obs::MetricsRegistry& metrics = telemetry->metrics();
  metrics.counter("backend.runs").inc();
  metrics.counter(std::string("backend.") + backend + ".runs").inc();
  metrics.counter("backend.bits_processed")
      .add(static_cast<std::uint64_t>(n) * program.node_count());
  metrics.counter("backend.rng_draws")
      .add(modeled_rng_draws(program, plan, n));
}

/// Resolves the telemetry's probe specs against the *executed* program
/// (same name contract as fault plans: absent edges are skipped).
obs::ProbeSet make_probe_set(obs::Telemetry* telemetry,
                             const Program& program) {
  obs::ProbeSet set;
  if (telemetry == nullptr) return set;
  for (const obs::ProbeSpec& spec : telemetry->probe_specs()) {
    const NodeId x = program.find(spec.edge_x);
    if (x == kInvalidNode) continue;
    const bool pair = !spec.edge_y.empty();
    NodeId y = kInvalidNode;
    if (pair) {
      y = program.find(spec.edge_y);
      if (y == kInvalidNode) continue;
    }
    set.add(spec, pair, x, pair ? y : 0, telemetry->tracer());
  }
  return set;
}

OpContext context_for(const Program& program, NodeId id,
                      const ExecConfig& config) {
  OpContext ctx;
  ctx.stream_length = config.stream_length;
  ctx.width = config.width;
  ctx.node = program.node(id).seed_tag;  // stable across optimizer rewrites
  ctx.base_seed = config.seed;
  return ctx;
}

/// Operand slots a node's planned fixes write to (fixes mutate their pair
/// in place, so those slots — and only those — need private copies of the
/// producer streams).
std::vector<unsigned> fixed_slots_of(const std::vector<const PairFix*>& fixes) {
  std::vector<unsigned> slots;
  for (const PairFix* fix : fixes) {
    for (const unsigned slot : {fix->operand_a, fix->operand_b}) {
      if (std::find(slots.begin(), slots.end(), slot) == slots.end()) {
        slots.push_back(slot);
      }
    }
  }
  return slots;
}

void reduce_outputs(const Program& program, ExecutionResult& result,
                    const std::vector<double>& measured) {
  const std::vector<double> exact = program.exact_values();
  double total = 0.0;
  for (NodeId output : program.outputs()) {
    result.output_nodes.push_back(output);
    result.values.push_back(measured[output]);
    result.exact.push_back(exact[output]);
    result.abs_errors.push_back(std::abs(measured[output] - exact[output]));
    total += result.abs_errors.back();
  }
  result.mean_abs_error =
      result.output_nodes.empty()
          ? 0.0
          : total / static_cast<double>(result.output_nodes.size());
}

// ------------------------------------------------------- whole-stream path

ExecutionResult run_whole(const Program& program, const ProgramPlan& plan,
                          const ExecConfig& config, bool kernel_path) {
  obs::Telemetry* const telemetry = obs::fallback(config.telemetry);
  obs::Tracer* const tracer = obs::tracer_of(telemetry);
  const char* const backend_name = kernel_path ? "kernel" : "reference";
  obs::Span run_span(tracer, std::string("backend.run.") + backend_name,
                     "backend");
  run_span.arg("nodes", static_cast<std::uint64_t>(program.node_count()));
  run_span.arg("stream_bits",
               static_cast<std::uint64_t>(config.stream_length));
  const fault::ResolvedFaultPlan faults =
      fault::resolve(config.fault_plan, program, &plan, telemetry);
  const std::size_t n = config.stream_length;
  // 64-bit: `1u << 32` is UB and a uint32 period wraps to 0 at width 32.
  const std::uint64_t natural = std::uint64_t{1} << config.width;

  // --- group traces -------------------------------------------------------
  std::map<unsigned, std::vector<std::uint32_t>> traces;
  {
    obs::Span trace_span(tracer, "backend.group_traces", "backend");
    for (NodeId id = 0; id < program.node_count(); ++id) {
      const ProgramNode& node = program.node(id);
      if (node.kind == ProgramNode::Kind::kOp) continue;
      if (traces.count(node.rng_group) != 0) continue;
      rng::Lfsr source(config.width, derive_seed32(config.seed, node.rng_group,
                                                   Role::kGroupTrace));
      std::vector<std::uint32_t> trace(n);
      for (std::size_t i = 0; i < n; ++i) trace[i] = source.next();
      traces.emplace(node.rng_group, std::move(trace));
    }
    trace_span.arg("groups", static_cast<std::uint64_t>(traces.size()));
  }

  ExecutionResult result;
  result.streams.resize(program.node_count());
  std::vector<double> measured(program.node_count(), 0.0);

  for (NodeId id = 0; id < program.node_count(); ++id) {
    const ProgramNode& node = program.node(id);
    obs::Span node_span(
        tracer, node.name.empty() ? "node#" + std::to_string(id) : node.name,
        node.kind == ProgramNode::Kind::kOp ? "node.op" : "node.source");
    if (node.kind != ProgramNode::Kind::kOp) {
      const std::uint64_t level = unipolar_level64(node.value, natural);
      const auto& trace = traces.at(node.rng_group);
      Bitstream stream(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (trace[i] < level) stream.set(i, true);
      }
      result.streams[id] = std::move(stream);
      fault::apply_edge_faults(faults, id, result.streams[id], 0);
      measured[id] = result.streams[id].value();
      continue;
    }

    // --- operand views + planned pair fixes -------------------------------
    // Only fix-target slots get private copies (fixes mutate their pair in
    // place); everything else reads the producer stream directly.
    std::vector<const Bitstream*> operands(node.operands.size());
    for (std::size_t k = 0; k < node.operands.size(); ++k) {
      operands[k] = &result.streams[node.operands[k]];
    }
    const std::vector<const PairFix*> fixes = plan.fixes_for(id);
    const std::vector<unsigned> fixed_slots = fixed_slots_of(fixes);
    std::vector<Bitstream> copies(fixed_slots.size());
    for (std::size_t c = 0; c < fixed_slots.size(); ++c) {
      copies[c] = result.streams[node.operands[fixed_slots[c]]];
      operands[fixed_slots[c]] = &copies[c];
    }
    const auto copy_of = [&](unsigned slot) -> Bitstream& {
      const auto it =
          std::find(fixed_slots.begin(), fixed_slots.end(), slot);
      return copies[static_cast<std::size_t>(it - fixed_slots.begin())];
    };
    const NodeId tag = node.seed_tag;
    for (std::size_t position = 0; position < fixes.size(); ++position) {
      const PairFix& fix = *fixes[position];
      // A child span per correction: the profiler's collapsed stacks then
      // split a node's cost into "the operator" (the node span's exclusive
      // time) vs each planned fix (fix.decorrelator, fix.synchronizer, ...).
      obs::Span fix_span(tracer, "fix." + to_string(fix.fix), "node.fix");
      Bitstream& a = copy_of(fix.operand_a);
      Bitstream& b = copy_of(fix.operand_b);
      if (is_regenerating(fix.fix)) {
        apply_regeneration(fix.fix, a, b, config, tag, fix_lane(fix));
        continue;
      }
      const std::unique_ptr<core::PairTransform> transform =
          fault::wrap_fsm_faults(
              make_fix_transform(fix.fix, config, tag, fix_lane(fix)), faults,
              id, static_cast<unsigned>(position));
      const sc::StreamPair out = kernel_path ? kernel::apply(*transform, a, b)
                                             : core::apply(*transform, a, b);
      a = out.x;
      b = out.y;
    }

    // --- the operator itself ----------------------------------------------
    const OperatorDef& def = program.def_of(id);
    const std::unique_ptr<OpEvaluator> evaluator =
        def.make_evaluator(context_for(program, id, config));
    evaluator->begin(n);
    Bitstream out(n);
    const sc::span<const Bitstream* const> ins(operands.data(),
                                               operands.size());
    if (kernel_path) {
      evaluator->process(ins, out);
    } else {
      // Non-virtual call: the base implementation IS the bit-serial
      // reference semantics; subclass overrides are the fast paths
      // checked against it.
      evaluator->OpEvaluator::process(ins, out);
    }
    result.streams[id] = std::move(out);
    fault::apply_edge_faults(faults, id, result.streams[id], 0);
    measured[id] = result.streams[id].value();
  }

  reduce_outputs(program, result, measured);
  if (telemetry != nullptr) {
    record_run_metrics(telemetry, backend_name, program, plan, n);
    // Probes tap the finished (post-fault) streams; feeding them whole
    // yields the same windows as the chunked engine's live taps.
    obs::ProbeSet probes = make_probe_set(telemetry, program);
    if (!probes.empty()) {
      for (const auto& entry : probes.bound()) {
        entry->probe.feed(
            result.streams[entry->node_x],
            entry->pair ? &result.streams[entry->node_y] : nullptr, 0, n);
      }
      probes.publish(*telemetry);
    }
  }
  if (!config.keep_streams) result.streams.clear();
  return result;
}

// ------------------------------------------------------------ chunked path

/// Copies a chunk into `dst` at a word-aligned bit offset.
void copy_chunk_into(Bitstream& dst, const Bitstream& chunk,
                     std::size_t offset) {
  assert(offset % 64 == 0);
  const std::size_t word0 = offset / 64;
  const std::vector<Bitstream::Word>& src = chunk.words();
  Bitstream::Word* out = dst.word_data();
  for (std::size_t w = 0; w < src.size(); ++w) out[word0 + w] = src[w];
}

/// Per-node state of one chunked run.
struct ChunkNodeState {
  // Inputs/constants: lazy SNG source.
  std::unique_ptr<engine::SngChunkSource> source;
  // Ops: planned fixes (as chunk appliers) and the evaluator.
  std::vector<std::unique_ptr<core::PairTransform>> fix_transforms;
  std::vector<std::unique_ptr<kernel::ChunkedPairApplier>> fix_appliers;
  std::vector<const PairFix*> fixes;
  std::unique_ptr<OpEvaluator> evaluator;
  std::vector<unsigned> fixed_slots;  ///< operand slots the fixes mutate
  std::vector<Bitstream> scratch;     ///< chunk copies, one per fixed slot
  std::vector<const Bitstream*> operand_chunks;  ///< per-slot chunk views

  Bitstream chunk;            ///< this node's bits of the current chunk
  std::uint64_t ones = 0;     ///< running ones count (value reduction)
};

ExecutionResult run_chunked(const Program& program, const ProgramPlan& plan,
                            const ExecConfig& config,
                            engine::Session* session) {
  // Regeneration is stream-wide (S/D counts the whole operand before the
  // D/S re-encode can emit bit 0), so such plans cannot stream causally;
  // fall back to whole-stream kernel execution — still bit-identical.
  if (plan.has_regeneration()) {
    return run_whole(program, plan, config, /*kernel_path=*/true);
  }

  obs::Telemetry* const telemetry = obs::fallback(config.telemetry);
  obs::Tracer* const tracer = obs::tracer_of(telemetry);
  obs::Span run_span(tracer, "backend.run.engine", "backend");
  run_span.arg("nodes", static_cast<std::uint64_t>(program.node_count()));
  run_span.arg("stream_bits",
               static_cast<std::uint64_t>(config.stream_length));
  run_span.arg("threads",
               static_cast<std::uint64_t>(
                   session != nullptr ? session->threads() : 1));
  const fault::ResolvedFaultPlan faults =
      fault::resolve(config.fault_plan, program, &plan, telemetry);
  const std::size_t n = config.stream_length;
  const std::uint64_t natural = std::uint64_t{1} << config.width;
  std::size_t chunk_bits =
      session != nullptr ? session->config().chunk_bits
                         : engine::kDefaultChunkBits;
  // Word-align so chunk concatenation is a word copy; keep >= 64.
  chunk_bits = std::max<std::size_t>(64, chunk_bits & ~std::size_t{63});

  ExecutionResult result;
  if (config.keep_streams) {
    result.streams.assign(program.node_count(), Bitstream());
    for (NodeId id = 0; id < program.node_count(); ++id) {
      result.streams[id] = Bitstream(n);
    }
  }

  // --- per-node state -----------------------------------------------------
  std::vector<ChunkNodeState> states(program.node_count());
  std::vector<std::vector<NodeId>> levels;  // topological level -> nodes
  {
    std::vector<unsigned> level_of(program.node_count(), 0);
    for (NodeId id = 0; id < program.node_count(); ++id) {
      const ProgramNode& node = program.node(id);
      ChunkNodeState& state = states[id];
      if (node.kind != ProgramNode::Kind::kOp) {
        state.source = std::make_unique<engine::SngChunkSource>(
            std::make_unique<rng::Lfsr>(
                config.width, derive_seed32(config.seed, node.rng_group,
                                            Role::kGroupTrace)),
            unipolar_level64(node.value, natural), n);
        level_of[id] = 0;
      } else {
        unsigned level = 0;
        for (NodeId operand : node.operands) {
          level = std::max(level, level_of[operand] + 1);
        }
        level_of[id] = level;
        state.fixes = plan.fixes_for(id);
        for (std::size_t lane = 0; lane < state.fixes.size(); ++lane) {
          // Wrapped fix FSMs (fault plans) have no table kernel; the
          // applier below steps them bit-serially with state carried
          // across chunks, landing the corruption on the same absolute
          // cycle as the whole-stream backends.
          state.fix_transforms.push_back(fault::wrap_fsm_faults(
              make_fix_transform(state.fixes[lane]->fix, config,
                                 node.seed_tag, fix_lane(*state.fixes[lane])),
              faults, id, static_cast<unsigned>(lane)));
          auto applier = std::make_unique<kernel::ChunkedPairApplier>(
              *state.fix_transforms.back());
          applier->begin(n);
          state.fix_appliers.push_back(std::move(applier));
        }
        state.evaluator = program.def_of(id).make_evaluator(
            context_for(program, id, config));
        state.evaluator->begin(n);
        state.fixed_slots = fixed_slots_of(state.fixes);
        state.scratch.resize(state.fixed_slots.size());
        state.operand_chunks.resize(node.operands.size());
      }
      if (level_of[id] >= levels.size()) levels.resize(level_of[id] + 1);
      levels[level_of[id]].push_back(id);
    }
  }

  // --- the chunk loop -----------------------------------------------------
  engine::ChunkedRunStats stats;
  const auto advance_node = [&](NodeId id, std::size_t take,
                                std::size_t offset) {
    const ProgramNode& node = program.node(id);
    // Recorded from whichever pool worker advances the node, so the trace
    // timeline shows per-chunk activity fanned across threads.
    obs::Span node_span(
        tracer, node.name.empty() ? "node#" + std::to_string(id) : node.name,
        "chunk");
    node_span.arg("offset", static_cast<std::uint64_t>(offset));
    ChunkNodeState& state = states[id];
    if (node.kind != ProgramNode::Kind::kOp) {
      state.source->next_chunk(state.chunk, take);
    } else {
      // Unfixed operands read the producer's chunk in place; only the
      // slots a fix mutates are copied into scratch.
      for (std::size_t k = 0; k < node.operands.size(); ++k) {
        state.operand_chunks[k] = &states[node.operands[k]].chunk;
      }
      for (std::size_t c = 0; c < state.fixed_slots.size(); ++c) {
        const unsigned slot = state.fixed_slots[c];
        state.scratch[c] = states[node.operands[slot]].chunk;
        state.operand_chunks[slot] = &state.scratch[c];
      }
      const auto scratch_of = [&state](unsigned slot) -> Bitstream& {
        const auto it = std::find(state.fixed_slots.begin(),
                                  state.fixed_slots.end(), slot);
        return state.scratch[static_cast<std::size_t>(
            it - state.fixed_slots.begin())];
      };
      for (std::size_t lane = 0; lane < state.fix_appliers.size(); ++lane) {
        obs::Span fix_span(tracer, "fix." + to_string(state.fixes[lane]->fix),
                           "node.fix");
        state.fix_appliers[lane]->advance(
            scratch_of(state.fixes[lane]->operand_a),
            scratch_of(state.fixes[lane]->operand_b));
      }
      state.chunk.assign_zero(take);
      state.evaluator->process(
          sc::span<const Bitstream* const>(state.operand_chunks.data(),
                                           state.operand_chunks.size()),
          state.chunk);
    }
    // Corrupt the chunk at its absolute offset *before* the ones count and
    // the downstream reads — consumers of a faulted edge must see the
    // faulted bits, exactly as in the whole-stream path.
    fault::apply_edge_faults(faults, id, state.chunk, offset);
    state.ones += state.chunk.count_ones();
    if (config.keep_streams) {
      copy_chunk_into(result.streams[id], state.chunk, offset);
    }
  };

  obs::ProbeSet probes = make_probe_set(telemetry, program);
  for (std::size_t offset = 0; offset < n; offset += chunk_bits) {
    const std::size_t take = std::min(chunk_bits, n - offset);
    obs::Span chunk_span(tracer, "engine.chunk", "engine");
    chunk_span.arg("offset", static_cast<std::uint64_t>(offset));
    chunk_span.arg("bits", static_cast<std::uint64_t>(take));
    for (const std::vector<NodeId>& level : levels) {
      // Nodes of one level only read lower-level chunks, so they advance
      // independently; fan them across the session pool when it helps.
      if (session != nullptr && session->threads() > 1 && level.size() > 1) {
        session->runner().for_each(level.size(), [&](std::size_t i) {
          advance_node(level[i], take, offset);
        });
      } else {
        for (NodeId id : level) advance_node(id, take, offset);
      }
    }
    // The live tap: every node's chunk of this offset is still resident,
    // so probes observe internal edges as the stream advances.
    for (const auto& entry : probes.bound()) {
      entry->probe.feed(states[entry->node_x].chunk,
                        entry->pair ? &states[entry->node_y].chunk : nullptr,
                        offset, take);
    }
    stats.bits += take;
    ++stats.chunks;
  }
  stats.peak_buffer_bits = program.node_count() * chunk_bits;
  for (ChunkNodeState& state : states) {
    for (auto& applier : state.fix_appliers) applier->finish();
  }
  if (session != nullptr) {
    session->note_chunked(stats);
  }
  if (telemetry != nullptr &&
      (session == nullptr || session->telemetry() != telemetry)) {
    // Runs whose telemetry the session does not carry record the chunked
    // accounting directly (a bound session's note_chunked uses the same
    // metric names, into its own registry).
    obs::MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter("engine.chunked_runs").inc();
    metrics.counter("engine.chunks").add(stats.chunks);
    metrics.counter("engine.stream_bits").add(stats.bits);
    metrics.gauge("engine.buffer.peak_bits")
        .set(static_cast<double>(stats.peak_buffer_bits));
  }
  if (telemetry != nullptr) {
    record_run_metrics(telemetry, "engine", program, plan, n);
    probes.publish(*telemetry);
  }

  std::vector<double> measured(program.node_count(), 0.0);
  for (NodeId id = 0; id < program.node_count(); ++id) {
    measured[id] =
        n == 0 ? 0.0
               : static_cast<double>(states[id].ones) / static_cast<double>(n);
  }
  reduce_outputs(program, result, measured);
  return result;
}

// --------------------------------------------------------------- backends

/// The optimizer front (ExecConfig::optimize): rewrites the planned
/// program with opt::optimize, runs `inner` on the result, and maps the
/// per-node data back onto the caller's node ids — removed nodes get
/// empty streams, CSE-merged duplicates share the survivor's stream, and
/// output_nodes keep the original ids and order.
/// ExecConfig::analyze gate: run the static analyzer over the caller's
/// (program, plan) and refuse to execute on error-class findings.  Runs
/// before opt::optimize so diagnostics name the caller's node ids.
void analyze_or_throw(const Program& program, const ProgramPlan& plan,
                      const ExecConfig& config) {
  const analysis::AnalysisReport report = analysis::analyze(
      program, plan, analysis::AnalyzerConfig::from(config));
  if (!report.has_errors()) return;
  std::string what =
      "static analysis rejected the program (" +
      std::to_string(report.count(analysis::Severity::kError)) +
      " error(s)):";
  for (const analysis::Diagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.severity != analysis::Severity::kError) continue;
    what += "\n  [" + diagnostic.id + "] " + diagnostic.message;
  }
  throw std::runtime_error(what);
}

template <typename Inner>
ExecutionResult run_with_optimizer(const Program& program,
                                   const ProgramPlan& plan,
                                   const ExecConfig& config, Inner inner) {
  if (config.analyze) analyze_or_throw(program, plan, config);
  if (!config.optimize) return inner(program, plan);
  opt::OptConfig opt_config;
  opt_config.planner.sync_depth = config.sync_depth;
  opt_config.planner.shuffle_depth = config.shuffle_depth;
  opt_config.planner.width = config.width;
  opt_config.width = config.width;
  opt_config.telemetry = config.telemetry;
  opt_config.planner.telemetry = config.telemetry;
  const opt::OptResult optimized = opt::optimize(program, plan, opt_config);
  ExecutionResult result = inner(optimized.program, optimized.plan);
  result.output_nodes.assign(program.outputs().begin(),
                             program.outputs().end());
  if (config.keep_streams) {
    // Move each optimized stream into its last caller slot (CSE-merged
    // duplicates alias one optimized node, so earlier slots copy); long
    // keep_streams runs would otherwise transiently double stream memory.
    std::vector<NodeId> last_user(result.streams.size(), kInvalidNode);
    for (NodeId id = 0; id < program.node_count(); ++id) {
      const NodeId mapped = optimized.node_map[id];
      if (mapped != kInvalidNode) last_user[mapped] = id;
    }
    std::vector<Bitstream> streams(program.node_count());
    for (NodeId id = 0; id < program.node_count(); ++id) {
      const NodeId mapped = optimized.node_map[id];
      if (mapped == kInvalidNode) continue;
      streams[id] = last_user[mapped] == id
                        ? std::move(result.streams[mapped])
                        : result.streams[mapped];
    }
    result.streams = std::move(streams);
  }
  return result;
}

class ReferenceBackend final : public ExecutorBackend {
 public:
  [[nodiscard]] std::string name() const override { return "reference"; }
  ExecutionResult run(const Program& program, const ProgramPlan& plan,
                      const ExecConfig& config) override {
    return run_with_optimizer(
        program, plan, config, [&](const Program& p, const ProgramPlan& pl) {
          return run_whole(p, pl, config, /*kernel_path=*/false);
        });
  }
};

class KernelBackend final : public ExecutorBackend {
 public:
  [[nodiscard]] std::string name() const override { return "kernel"; }
  ExecutionResult run(const Program& program, const ProgramPlan& plan,
                      const ExecConfig& config) override {
    return run_with_optimizer(
        program, plan, config, [&](const Program& p, const ProgramPlan& pl) {
          return run_whole(p, pl, config, /*kernel_path=*/true);
        });
  }
};

class EngineBackend final : public ExecutorBackend {
 public:
  explicit EngineBackend(engine::Session* session) : session_(session) {}
  [[nodiscard]] std::string name() const override { return "engine"; }
  ExecutionResult run(const Program& program, const ProgramPlan& plan,
                      const ExecConfig& config) override {
    return run_with_optimizer(
        program, plan, config, [&](const Program& p, const ProgramPlan& pl) {
          return run_chunked(p, pl, config, session_);
        });
  }

 private:
  engine::Session* session_;
};

}  // namespace

std::unique_ptr<ExecutorBackend> make_backend(BackendKind kind) {
  switch (kind) {
    case BackendKind::kReference:
      return std::make_unique<ReferenceBackend>();
    case BackendKind::kKernel:
      return std::make_unique<KernelBackend>();
    case BackendKind::kEngine:
      return std::make_unique<EngineBackend>(nullptr);
  }
  return nullptr;
}

std::unique_ptr<ExecutorBackend> make_engine_backend(
    engine::Session& session) {
  return std::make_unique<EngineBackend>(&session);
}

std::vector<std::uint32_t> derived_seeds(const Program& program,
                                          const ProgramPlan& plan,
                                          const ExecConfig& config) {
  std::vector<std::uint32_t> out;
  std::map<unsigned, bool> groups;
  for (NodeId id = 0; id < program.node_count(); ++id) {
    const ProgramNode& node = program.node(id);
    if (node.kind != ProgramNode::Kind::kOp) {
      if (!groups.emplace(node.rng_group, true).second) continue;
      out.push_back(derive_seed32(config.seed, node.rng_group,
                                  Role::kGroupTrace));
      continue;
    }
    const OperatorDef& def = program.def_of(id);
    const std::uint32_t tag = node.seed_tag;
    for (unsigned slot = 0; slot < def.rng_slots; ++slot) {
      out.push_back(derive_seed32(config.seed, tag, Role::kOpPrivate, slot));
    }
    const std::vector<const PairFix*> fixes = plan.fixes_for(id);
    for (const PairFix* fix : fixes) {
      const std::uint32_t lane32 = fix_lane(*fix);
      switch (fix->fix) {
        case FixKind::kDecorrelator:
        case FixKind::kRegenerateDistinct:
          out.push_back(derive_seed32(config.seed, tag, Role::kFixAuxA, lane32));
          out.push_back(derive_seed32(config.seed, tag, Role::kFixAuxB, lane32));
          break;
        case FixKind::kDecorrelatorChain:
        case FixKind::kRegenerateShared:
        case FixKind::kRegenerateComplementary:
          out.push_back(derive_seed32(config.seed, tag, Role::kFixAuxA, lane32));
          break;
        default:
          break;  // synchronizer/desynchronizer draw no RNG
      }
    }
  }
  return out;
}

}  // namespace sc::graph
