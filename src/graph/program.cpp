#include "graph/program.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "hw/designs.hpp"

namespace sc::graph {

std::vector<NodeId> Program::op_nodes() const {
  std::vector<NodeId> ops;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == ProgramNode::Kind::kOp) ops.push_back(id);
  }
  return ops;
}

NodeId Program::find(const std::string& name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) return id;
  }
  return kInvalidNode;
}

std::vector<double> Program::exact_values() const {
  std::vector<double> values(nodes_.size(), 0.0);
  std::vector<double> operand_values;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const ProgramNode& n = nodes_[id];
    if (n.kind != ProgramNode::Kind::kOp) {
      values[id] = n.value;
      continue;
    }
    operand_values.clear();
    for (NodeId operand : n.operands) operand_values.push_back(values[operand]);
    values[id] = registry_->def(n.op).exact(
        sc::span<const double>(operand_values.data(), operand_values.size()));
  }
  return values;
}

double Program::exact_value(NodeId id) const { return exact_values()[id]; }

hw::Netlist Program::base_netlist(unsigned width) const {
  hw::Netlist n("program-base");
  std::set<unsigned> groups;
  for (const ProgramNode& node : nodes_) {
    if (node.kind == ProgramNode::Kind::kOp) {
      const OperatorDef& def = registry_->def(node.op);
      if (def.netlist) n += def.netlist(width);
      continue;
    }
    // One comparator per encoded value; the group's RNG charged once.
    n += hw::comparator_netlist(width);
    if (groups.insert(node.rng_group).second) n += hw::lfsr_netlist(width);
  }
  return n;
}

GraphBuilder::GraphBuilder(const OperatorRegistry& reg)
    : next_constant_group_(kConstantGroupBase) {
  program_.registry_ = &reg;
}

NodeId GraphBuilder::push(ProgramNode node) {
  program_.nodes_.push_back(std::move(node));
  const auto id = static_cast<NodeId>(program_.nodes_.size() - 1);
  if (program_.nodes_.back().seed_tag == ProgramNode::kAutoSeedTag) {
    program_.nodes_.back().seed_tag = id;
  }
  if (!program_.nodes_.back().name.empty()) {
    names_.emplace(program_.nodes_.back().name, id);
  }
  return id;
}

std::string GraphBuilder::unique_name(std::string name) {
  if (name.empty() || names_.count(name) == 0) return name;
  for (unsigned suffix = 2;; ++suffix) {
    const std::string candidate = name + "." + std::to_string(suffix);
    if (names_.count(candidate) == 0) return candidate;
  }
}

Value GraphBuilder::input(std::string name, double value, unsigned rng_group) {
  if (!name.empty() && names_.count(name) != 0) {
    throw std::invalid_argument("GraphBuilder::input: duplicate name '" +
                                name + "'");
  }
  if (rng_group >= kConstantGroupBase) {
    throw std::invalid_argument(
        "GraphBuilder::input: rng_group collides with the constant range");
  }
  ProgramNode node;
  node.kind = ProgramNode::Kind::kInput;
  node.name = std::move(name);
  node.value = std::clamp(value, 0.0, 1.0);
  node.rng_group = rng_group;
  return Value{push(std::move(node))};
}

Value GraphBuilder::raw_input(std::string name, double value,
                              unsigned rng_group) {
  ProgramNode node;
  node.kind = ProgramNode::Kind::kInput;
  node.name = unique_name(std::move(name));
  node.value = std::clamp(value, 0.0, 1.0);
  node.rng_group = rng_group;
  return Value{push(std::move(node))};
}

Value GraphBuilder::constant(double value, std::string name) {
  ProgramNode node;
  node.kind = ProgramNode::Kind::kConstant;
  node.name = unique_name(std::move(name));
  node.value = std::clamp(value, 0.0, 1.0);
  node.rng_group = next_constant_group_++;
  return Value{push(std::move(node))};
}

Value GraphBuilder::op(const std::string& op_name,
                       const std::vector<Value>& operands) {
  return op(program_.registry_->id_of(op_name), operands);
}

Value GraphBuilder::op(OpId id, const std::vector<Value>& operands) {
  if (id >= program_.registry_->size()) {
    throw std::invalid_argument("GraphBuilder::op: OpId out of range");
  }
  const OperatorDef& def = program_.registry_->def(id);
  if (operands.size() != def.arity) {
    throw std::invalid_argument(
        "GraphBuilder::op: '" + def.name + "' takes " +
        std::to_string(def.arity) + " operands, got " +
        std::to_string(operands.size()));
  }
  ProgramNode node;
  node.kind = ProgramNode::Kind::kOp;
  node.name = unique_name(def.name);
  node.op = id;
  node.operands.reserve(operands.size());
  for (const Value& v : operands) {
    if (v.id >= program_.nodes_.size()) {
      throw std::invalid_argument(
          "GraphBuilder::op: operand is not a value of this builder");
    }
    node.operands.push_back(v.id);
  }
  return Value{push(std::move(node))};
}

Value GraphBuilder::raw_node(ProgramNode node) {
  if (node.kind == ProgramNode::Kind::kOp) {
    if (node.op >= program_.registry_->size()) {
      throw std::invalid_argument("GraphBuilder::raw_node: OpId out of range");
    }
    for (NodeId operand : node.operands) {
      if (operand >= program_.nodes_.size()) {
        throw std::invalid_argument(
            "GraphBuilder::raw_node: operand references a later node");
      }
    }
  }
  return Value{push(std::move(node))};
}

GraphBuilder& GraphBuilder::output(Value v, std::string name) {
  if (v.id >= program_.nodes_.size()) {
    throw std::invalid_argument(
        "GraphBuilder::output: value is not from this builder");
  }
  if (!name.empty()) {
    const auto existing = names_.find(name);
    if (existing != names_.end() && existing->second != v.id) {
      throw std::invalid_argument("GraphBuilder::output: name '" + name +
                                  "' already names another value");
    }
    if (!program_.nodes_[v.id].name.empty()) {
      names_.erase(program_.nodes_[v.id].name);
    }
    names_.emplace(name, v.id);
    program_.nodes_[v.id].name = std::move(name);
  }
  program_.outputs_.push_back(v.id);
  return *this;
}

std::vector<Value> GraphBuilder::append(const Program& sub,
                                        const std::vector<Value>& arguments) {
  std::size_t input_count = 0;
  for (const ProgramNode& n : sub.nodes_) {
    if (n.kind == ProgramNode::Kind::kInput) ++input_count;
  }
  if (arguments.size() != input_count) {
    throw std::invalid_argument(
        "GraphBuilder::append: subprogram has " + std::to_string(input_count) +
        " inputs, got " + std::to_string(arguments.size()) + " arguments");
  }
  std::map<NodeId, NodeId> remap;
  std::size_t next_argument = 0;
  for (NodeId id = 0; id < sub.nodes_.size(); ++id) {
    const ProgramNode& n = sub.nodes_[id];
    switch (n.kind) {
      case ProgramNode::Kind::kInput: {
        const Value bound = arguments[next_argument++];
        if (bound.id >= program_.nodes_.size()) {
          throw std::invalid_argument(
              "GraphBuilder::append: argument is not from this builder");
        }
        remap[id] = bound.id;
        break;
      }
      case ProgramNode::Kind::kConstant:
        remap[id] = constant(n.value, n.name).id;
        break;
      case ProgramNode::Kind::kOp: {
        // Re-resolve by name so subprograms built against another registry
        // instance keep meaning (ids are registry-local).  The local
        // definition must agree on arity, or the spliced operand list
        // would not match the evaluator it now executes.
        const OperatorDef& sub_def = sub.reg().def(n.op);
        const OpId local = program_.registry_->id_of(sub_def.name);
        if (program_.registry_->def(local).arity != n.operands.size()) {
          throw std::invalid_argument(
              "GraphBuilder::append: operator '" + sub_def.name +
              "' has arity " +
              std::to_string(program_.registry_->def(local).arity) +
              " in this registry but " + std::to_string(n.operands.size()) +
              " in the subprogram");
        }
        ProgramNode copy;
        copy.kind = ProgramNode::Kind::kOp;
        copy.name = unique_name(n.name);
        copy.op = local;
        for (NodeId operand : n.operands) copy.operands.push_back(remap.at(operand));
        remap[id] = push(std::move(copy));
        break;
      }
    }
  }
  std::vector<Value> outs;
  outs.reserve(sub.outputs_.size());
  for (NodeId out : sub.outputs_) outs.push_back(Value{remap.at(out)});
  return outs;
}

Program GraphBuilder::build() {
  Program built = std::move(program_);
  program_ = Program{};
  program_.registry_ = built.registry_;
  names_.clear();
  return built;
}

}  // namespace sc::graph
