/// \file program.hpp
/// Registry-backed SC programs and the fluent builder that makes them.
///
/// A Program is a DAG whose op nodes reference OperatorDefs by OpId, so
/// *any* registered operator — built-in or user-defined — participates in
/// exact evaluation, correlation planning (planner.hpp), hardware costing,
/// and execution on every backend (backend.hpp).  Programs support named
/// values, n-ary operators, constants (each with a private RNG group),
/// multiple outputs, and subgraph composition (append), replacing the
/// closed two-operand DataflowGraph as the computation representation;
/// DataflowGraph remains as a thin shim (dataflow.hpp) that converts into
/// a Program.
///
/// Typical use:
///   GraphBuilder b;
///   auto x = b.input("x", 0.8, /*rng_group=*/0);
///   auto y = b.input("y", 0.6, 0);               // shares x's RNG
///   auto e = b.op("subtract", {b.op("multiply", {x, y}), b.constant(0.3)});
///   b.output(e, "edge");
///   Program p = b.build();

#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/registry.hpp"
#include "hw/netlist.hpp"

namespace sc::graph {

/// Sentinel for "no such node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One program node.
struct ProgramNode {
  enum class Kind { kInput, kConstant, kOp };
  Kind kind = Kind::kInput;
  std::string name;

  // Input / constant fields.
  double value = 0.0;      ///< unipolar stream value in [0, 1]
  unsigned rng_group = 0;  ///< inputs sharing a group share one RNG trace

  // Op fields.
  OpId op = 0;
  std::vector<NodeId> operands;

  /// Key the backends derive this node's private seeds from (operator RNG
  /// slots, per-fix aux RNGs).  Builders assign it equal to the node id;
  /// optimizer rewrites (src/opt/) preserve the tag when nodes move, so a
  /// pass that only deduplicates or removes nodes leaves every surviving
  /// node's random draws — and therefore its stream — bit-identical.
  /// kAutoSeedTag means "assign my node id on push".
  std::uint32_t seed_tag = kAutoSeedTag;

  static constexpr std::uint32_t kAutoSeedTag = 0xFFFFFFFFu;
};

/// An immutable registry-backed DAG (build one with GraphBuilder).
class Program {
 public:
  const ProgramNode& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Ids of all op nodes in creation (topological) order.
  [[nodiscard]] std::vector<NodeId> op_nodes() const;

  /// Node id of a named value, kInvalidNode when absent.
  [[nodiscard]] NodeId find(const std::string& name) const;

  /// Exact floating-point value of a node via the registry's semantics.
  [[nodiscard]] double exact_value(NodeId id) const;
  /// Exact values of all nodes in one topological pass.
  [[nodiscard]] std::vector<double> exact_values() const;

  /// The registry this program's OpIds index into.
  const OperatorRegistry& reg() const { return *registry_; }
  const OperatorDef& def_of(NodeId op_node) const {
    return registry_->def(nodes_[op_node].op);
  }

  /// Standard-cell netlist of the computation itself (operator cells plus
  /// the input SNG bank: one LFSR per RNG group, one comparator per
  /// input/constant).  Correlation-fix overhead is accounted separately by
  /// the planner (ProgramPlan::overhead); base + overhead prices the full
  /// design.
  [[nodiscard]] hw::Netlist base_netlist(unsigned width) const;

 private:
  friend class GraphBuilder;
  const OperatorRegistry* registry_ = nullptr;
  std::vector<ProgramNode> nodes_;
  std::vector<NodeId> outputs_;
};

/// Lightweight value handle returned by builder calls.
struct Value {
  NodeId id = kInvalidNode;
};

/// Fluent program builder.  All methods validate eagerly and throw
/// std::invalid_argument on misuse (unknown operator, arity mismatch,
/// operand from a different builder, duplicate value name).
class GraphBuilder {
 public:
  /// Builds against the process-wide registry() by default; pass a custom
  /// registry to use locally registered operators.  The registry must
  /// outlive the builder and every Program built from it.
  explicit GraphBuilder(const OperatorRegistry& reg = registry());

  /// Adds a generated input.  Inputs sharing `rng_group` are encoded from
  /// one RNG trace (SCC = +1 between them).
  Value input(std::string name, double value, unsigned rng_group);

  /// Shim path for to_program(): like input() but without the duplicate-
  /// name / group-range validation (names are auto-uniquified, any group
  /// id is accepted — legacy DataflowGraph never restricted either).
  Value raw_input(std::string name, double value, unsigned rng_group);

  /// Adds a constant stream.  Each constant gets a private RNG group, so
  /// it is provably independent of every other value.
  Value constant(double value, std::string name = "");

  /// Adds an n-ary operation by registry name or id.
  Value op(const std::string& op_name, const std::vector<Value>& operands);
  Value op(OpId id, const std::vector<Value>& operands);

  /// Optimizer rebuild path: appends a fully-specified node verbatim — no
  /// name uniquification, rng-group assignment, or seed-tag reset.  Operand
  /// ids must reference earlier nodes of this builder; a kAutoSeedTag tag
  /// is still replaced by the node's id.  Used by opt:: passes to rebuild
  /// programs while preserving every surviving node's RNG identity.
  Value raw_node(ProgramNode node);

  /// Marks a value as a program output, optionally renaming it.  Throws
  /// if `name` already names a different value.
  GraphBuilder& output(Value v, std::string name = "");

  /// Splices `sub`'s nodes into this builder, binding sub's inputs (in
  /// creation order) to `arguments`; constants and ops are copied, names
  /// uniquified on collision.  Returns sub's outputs remapped into this
  /// builder — subgraph composition for reusable blocks.  `sub`'s
  /// operators are re-resolved *by name* in this builder's registry.
  std::vector<Value> append(const Program& sub,
                            const std::vector<Value>& arguments);

  [[nodiscard]] std::size_t node_count() const { return program_.nodes_.size(); }

  /// True when a value name is already in use (input() would throw).
  [[nodiscard]] bool find_name_taken(const std::string& name) const {
    return names_.count(name) != 0;
  }

  /// Finalizes the program (the builder is left empty).
  Program build();

 private:
  NodeId push(ProgramNode node);
  std::string unique_name(std::string name);

  Program program_;
  unsigned next_constant_group_;
  /// Name -> node index, so name validation/uniquification is O(1) per
  /// added node instead of a linear Program::find scan.
  std::unordered_map<std::string, NodeId> names_;
};

/// First RNG group id auto-assigned to constants (user inputs should use
/// groups below this).
inline constexpr unsigned kConstantGroupBase = 0x40000000u;

}  // namespace sc::graph
