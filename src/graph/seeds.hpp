/// \file seeds.hpp
/// Deterministic auxiliary-seed derivation for graph execution.
///
/// Every random decision a backend makes — input group traces, fix-circuit
/// RNGs, MUX select streams, operator-private generators — draws its seed
/// from one base seed mixed with a (node, role, lane) key.  The previous
/// scheme used ad-hoc offsets (`seed + 2001 + id` next to
/// `seed + 2001 + 2*id`), whose affine families collide across fix kinds
/// and node ids; here the key fields occupy disjoint bit ranges of a 64-bit
/// word, so distinct (node, role, lane) triples produce distinct keys, and
/// the SplitMix64 finalizer (a bijection on 64-bit words) maps distinct
/// keys under one base seed to distinct 64-bit seeds *by construction*.
/// tests/backend_test.cpp enumerates every seed of a large plan and
/// asserts pairwise distinctness as a regression guard.
///
/// Width-masked consumers (rng::Lfsr keeps the low `width` bits) can still
/// alias in the masked space — unavoidable by pigeonhole — but the mix
/// removes the *structured* collisions of the affine scheme, and the
/// decorrelator's second source keeps its output rotation so even a masked
/// collision yields a distinct address schedule.

#pragma once

#include <cstdint>

namespace sc::graph::seeds {

/// What a derived seed is used for.  Values are stable identifiers baked
/// into the derivation key; append new roles, never renumber.
enum class Role : std::uint8_t {
  kGroupTrace = 1,  ///< input SNG trace of one RNG group (node = group id)
  kFixAuxA = 2,     ///< first aux RNG of an inserted fix (lane = pair index)
  kFixAuxB = 3,     ///< second aux RNG of an inserted fix
  kOpPrivate = 4,   ///< operator-private RNG (lane = evaluator slot)
};

/// SplitMix64 finalizer (Steele et al., the mixer job_seed also uses).
inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Packs (node, role, lane) into disjoint bit ranges: node in bits 32..63,
/// lane in bits 8..31 (pair or slot indices; < 2^24), role in bits 0..7.
/// Distinct triples -> distinct keys.
inline std::uint64_t seed_key(std::uint32_t node, Role role,
                              std::uint32_t lane) {
  return (static_cast<std::uint64_t>(node) << 32) |
         (static_cast<std::uint64_t>(lane & 0xFFFFFFu) << 8) |
         static_cast<std::uint64_t>(role);
}

/// Full-width derived seed: distinct (node, role, lane) under one base seed
/// give distinct results (XOR with a fixed base and SplitMix64 are both
/// bijections of the key).
inline std::uint64_t derive_seed(std::uint64_t base, std::uint32_t node,
                                 Role role, std::uint32_t lane = 0) {
  return splitmix64(base ^ seed_key(node, role, lane));
}

/// 32-bit fold for LFSR-style consumers; 0 remaps to 1 (rng::Lfsr treats a
/// masked-zero seed as 1, so two derived seeds must not alias through 0).
inline std::uint32_t derive_seed32(std::uint64_t base, std::uint32_t node,
                                   Role role, std::uint32_t lane = 0) {
  const std::uint64_t s = derive_seed(base, node, role, lane);
  const auto folded = static_cast<std::uint32_t>(s ^ (s >> 32));
  return folded == 0 ? 1u : folded;
}

}  // namespace sc::graph::seeds
