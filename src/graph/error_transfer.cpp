#include "graph/error_transfer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace sc::graph::error_transfers {

namespace {

// Calibration constants of the builtin transfers.  Tightness is measured
// by analysis_accuracy_property_test (ratio measured/bound logged over
// seed-logged random programs x 3 backends); soundness does not hinge on
// them — the error model caps every bound at the trivial envelope — but
// the multi-objective optimizer gate is only as selective as they are
// tight.  The chain calibration test pins the decorrelator-chain numbers
// against the measured fanout-16 regression (err 0.020 -> 0.052 at
// N = 4096).

/// Estimator variance floor: even a near-constant output wanders a
/// little against operand-alignment pseudo-noise.
constexpr double kVarFloor = 0.01;
/// Autocorrelation scale of FSM function outputs, in units of `states`.
constexpr double kFsmTauPerState = 2.0;
/// FSM asymptotic-curve model error on a well-behaved (SNG) input: an
/// 8-state saturating counter sits up to ~0.10 off the closed-form tanh
/// curve in the steep region (measured across the soundness campaign),
/// so the bound carries the full discrepancy...
constexpr double kFsmModelError = 0.15;
/// ...and the surcharge when the input stream is itself autocorrelated
/// (an FSM fed by an FSM — the Bernoulli-input assumption behind the
/// asymptotic curve degrades).
constexpr double kFsmAutocorrSurcharge = 0.12;
/// FSM warm-up transient: the saturating counter needs O(states) cycles
/// to forget its reset state.
constexpr double kFsmWarmupPerState = 4.0;
/// Toggle-adder settle error in cycles (deterministic carry state).
constexpr double kToggleSettleCycles = 2.0;
/// Bernstein popcount distortion at fully correlated copies, as a
/// fraction of the trivial envelope.
constexpr double kBernsteinCorrShare = 0.5;
/// MUX select / data phase coupling: the half-weight select stream comes
/// from the same LFSR family as the data streams, so over a period its
/// choice can co-vary with the data by a few percent of the operand gap.
constexpr double kMuxSelectCoupling = 0.05;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

double trivial(double exact) { return std::max(exact, 1.0 - exact); }

/// tau * max(q(1-q), floor) / N — the generic output-sampling variance
/// of an N-bit mean estimate with autocorrelation scale tau.
double sample_var(double q, double tau, std::size_t n) {
  return tau * std::max(q * (1.0 - q), kVarFloor) /
         static_cast<double>(std::max<std::size_t>(n, 1));
}

double residual_of(const ErrorTransferInput& in, unsigned i, unsigned j) {
  return in.residual ? std::clamp(in.residual(i, j), 0.0, 1.0) : 1.0;
}

double max_tau(const ErrorTransferInput& in) {
  double tau = 2.0;
  for (const ErrorAbs& a : in.operands) tau = std::max(tau, a.tau);
  return tau;
}

}  // namespace

ErrorTransfer nary_and() {
  return [](const ErrorTransferInput& in) {
    const std::size_t n = in.operands.size();
    double p = in.exact_operands[0];
    double bias = in.operands[0].bias;
    double var = in.operands[0].var;
    double lo = in.operands[0].lo;
    double hi = in.operands[0].hi;
    double corr = 0.0;
    for (std::size_t k = 1; k < n; ++k) {
      const double pk = in.exact_operands[k];
      const ErrorAbs& ok = in.operands[k];
      // Strongest residual correlation against any earlier operand
      // dominates this accumulation step (the partial product carries
      // at most that operand's alignment).
      double r = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        r = std::max(r, residual_of(in, static_cast<unsigned>(j),
                                    static_cast<unsigned>(k)));
      }
      const double w_pos = std::min(p, pk) - p * pk;
      const double w_neg = p * pk - std::max(0.0, p + pk - 1.0);
      corr += r * std::max(w_pos, w_neg);
      bias = bias * pk + ok.bias * p + bias * ok.bias;
      var = var * pk * pk + ok.var * p * p + var * ok.var;
      lo = std::max(0.0, lo + ok.lo - 1.0);  // Frechet lower envelope
      hi = std::min(hi, ok.hi);
      p *= pk;
    }
    ErrorAbs out;
    out.lo = lo;
    out.hi = hi;
    out.corr = corr;
    out.bias = bias + corr;
    out.tau = max_tau(in);
    out.var = var + sample_var(in.exact, out.tau, in.stream_length);
    return out;
  };
}

ErrorTransfer and_min() {
  return [](const ErrorTransferInput& in) {
    const double a = in.exact_operands[0];
    const double b = in.exact_operands[1];
    const ErrorAbs& oa = in.operands[0];
    const ErrorAbs& ob = in.operands[1];
    const double frechet_lo = std::max(0.0, a + b - 1.0);
    ErrorAbs out;
    out.lo = std::max(0.0, oa.lo + ob.lo - 1.0);
    out.hi = std::min(oa.hi, ob.hi);
    out.corr = residual_of(in, 0, 1) * (std::min(a, b) - frechet_lo);
    out.bias = oa.bias + ob.bias + out.corr;
    out.tau = max_tau(in);
    out.var = std::max(oa.var, ob.var) +
              sample_var(in.exact, out.tau, in.stream_length);
    return out;
  };
}

ErrorTransfer or_max() {
  return [](const ErrorTransferInput& in) {
    const double a = in.exact_operands[0];
    const double b = in.exact_operands[1];
    const ErrorAbs& oa = in.operands[0];
    const ErrorAbs& ob = in.operands[1];
    ErrorAbs out;
    out.lo = std::max(oa.lo, ob.lo);
    out.hi = std::min(1.0, oa.hi + ob.hi);
    out.corr =
        residual_of(in, 0, 1) * (std::min(1.0, a + b) - std::max(a, b));
    out.bias = oa.bias + ob.bias + out.corr;
    out.tau = max_tau(in);
    out.var = std::max(oa.var, ob.var) +
              sample_var(in.exact, out.tau, in.stream_length);
    return out;
  };
}

ErrorTransfer or_saturating_add() {
  return [](const ErrorTransferInput& in) {
    const double a = in.exact_operands[0];
    const double b = in.exact_operands[1];
    const ErrorAbs& oa = in.operands[0];
    const ErrorAbs& ob = in.operands[1];
    ErrorAbs out;
    // Clipping interval: the OR can never undershoot either operand nor
    // overshoot the clipped sum.
    out.lo = std::max(oa.lo, ob.lo);
    out.hi = std::min(1.0, oa.hi + ob.hi);
    // SCC = -1 realizes min(1, a+b); the worst drift away is all the
    // way down to max(a, b) at SCC = +1.
    out.corr =
        residual_of(in, 0, 1) * (std::min(1.0, a + b) - std::max(a, b));
    out.bias = oa.bias + ob.bias + out.corr;
    out.tau = max_tau(in);
    out.var = std::max(oa.var, ob.var) +
              sample_var(in.exact, out.tau, in.stream_length);
    // Saturation: the exact sum already rides the clip boundary, so the
    // operator is destroying magnitude information.
    out.saturated = a + b > 1.0 - 0.125;
    return out;
  };
}

ErrorTransfer xor_subtract() {
  return [](const ErrorTransferInput& in) {
    const double a = in.exact_operands[0];
    const double b = in.exact_operands[1];
    const ErrorAbs& oa = in.operands[0];
    const ErrorAbs& ob = in.operands[1];
    ErrorAbs out;
    out.lo = std::max({0.0, oa.lo - ob.hi, ob.lo - oa.hi});
    out.hi = std::min({1.0, oa.hi + ob.hi, 2.0 - oa.lo - ob.lo});
    // E[XOR] spans |a-b| (SCC = +1) up to min(a+b, 2-a-b) (SCC = -1).
    out.corr = residual_of(in, 0, 1) *
               (std::min(a + b, 2.0 - a - b) - std::abs(a - b));
    out.bias = oa.bias + ob.bias + out.corr;
    out.tau = max_tau(in);
    out.var = oa.var + ob.var +
              sample_var(in.exact, out.tau, in.stream_length);
    return out;
  };
}

ErrorTransfer mux_scaled_add(bool invert_y) {
  return [invert_y](const ErrorTransferInput& in) {
    const ErrorAbs& oa = in.operands[0];
    const ErrorAbs ob_raw = in.operands[1];
    ErrorAbs ob = ob_raw;
    double b = in.exact_operands[1];
    if (invert_y) {
      ob.lo = 1.0 - ob_raw.hi;
      ob.hi = 1.0 - ob_raw.lo;
      b = 1.0 - b;
    }
    const double a = in.exact_operands[0];
    const double n = static_cast<double>(std::max<std::size_t>(
        in.stream_length, 1));
    const double period =
        static_cast<double>((std::uint64_t{1} << in.width) - 1);
    // The half-weight select level sits 1/(2(2^w - 1)) off 0.5, and a
    // non-integral number of select periods adds (N mod P)/(2N).
    const double select_bias =
        0.5 / period +
        0.5 * std::fmod(n, period) / n * (n >= period ? 1.0 : 0.0);
    ErrorAbs out;
    out.lo = clamp01(0.5 * (oa.lo + ob.lo) - select_bias);
    out.hi = clamp01(0.5 * (oa.hi + ob.hi) + select_bias);
    out.bias = 0.5 * (oa.bias + ob.bias) +
               (select_bias + kMuxSelectCoupling) * std::abs(a - b);
    out.tau = max_tau(in);
    // Select sampling: per-cycle Bernoulli(1/2) choice between streams
    // that differ by |a - b|.
    const double gap = std::abs(a - b) + oa.bias + ob.bias;
    out.var = 0.25 * (oa.var + ob.var) +
              out.tau * std::max(0.25 * gap * gap, kVarFloor) / n;
    return out;
  };
}

ErrorTransfer xnor_multiply_bipolar() {
  return [](const ErrorTransferInput& in) {
    const double a = in.exact_operands[0];
    const double b = in.exact_operands[1];
    const ErrorAbs& oa = in.operands[0];
    const ErrorAbs& ob = in.operands[1];
    // E[XNOR] = 1 - a - b + 2 E[AND]; the AND term carries the
    // correlation sensitivity.
    const double w_pos = std::min(a, b) - a * b;
    const double w_neg = a * b - std::max(0.0, a + b - 1.0);
    ErrorAbs out;
    out.lo = clamp01(1.0 - oa.hi - ob.hi +
                     2.0 * std::max(0.0, oa.lo + ob.lo - 1.0));
    out.hi = clamp01(1.0 - oa.lo - ob.lo + 2.0 * std::min(oa.hi, ob.hi));
    out.corr = 2.0 * residual_of(in, 0, 1) * std::max(w_pos, w_neg);
    out.bias = oa.bias * std::abs(2.0 * b - 1.0) +
               ob.bias * std::abs(2.0 * a - 1.0) + 2.0 * oa.bias * ob.bias +
               out.corr;
    out.tau = max_tau(in);
    out.var = oa.var + ob.var +
              sample_var(in.exact, out.tau, in.stream_length);
    return out;
  };
}

ErrorTransfer toggle_add() {
  return [](const ErrorTransferInput& in) {
    const ErrorAbs& oa = in.operands[0];
    const ErrorAbs& ob = in.operands[1];
    const double settle =
        kToggleSettleCycles /
        static_cast<double>(std::max<std::size_t>(in.stream_length, 1));
    ErrorAbs out;
    out.lo = clamp01(0.5 * (oa.lo + ob.lo) - settle);
    out.hi = clamp01(0.5 * (oa.hi + ob.hi) + settle);
    out.bias = 0.5 * (oa.bias + ob.bias) + settle;
    out.tau = max_tau(in);
    // Each operand is sampled on alternate cycles only (N/2 samples), so
    // its mean-estimate variance doubles before the 1/4 output scaling.
    out.var = 0.5 * (oa.var + ob.var);
    return out;
  };
}

ErrorTransfer cordiv_divide() {
  return [](const ErrorTransferInput& in) {
    ErrorAbs out;
    out.lo = 0.0;
    out.hi = 1.0;
    out.bias = trivial(in.exact);
    out.tau = std::max(max_tau(in), 8.0);  // DFF feedback holds state
    out.var = 0.0;
    return out;
  };
}

ErrorTransfer not_negate() {
  return [](const ErrorTransferInput& in) {
    const ErrorAbs& oa = in.operands[0];
    ErrorAbs out;
    out.lo = 1.0 - oa.hi;
    out.hi = 1.0 - oa.lo;
    out.bias = oa.bias;
    out.var = oa.var;
    out.tau = oa.tau;
    return out;
  };
}

ErrorTransfer fsm_lipschitz(double lipschitz, unsigned states) {
  return [lipschitz, states](const ErrorTransferInput& in) {
    const ErrorAbs& oa = in.operands[0];
    const double n = static_cast<double>(std::max<std::size_t>(
        in.stream_length, 1));
    const double warmup = kFsmWarmupPerState * states / n;
    // The asymptotic FSM curve assumes a Bernoulli input; an input that
    // itself holds state (another FSM upstream) breaks that assumption
    // harder than an SNG stream does.
    const double model = kFsmModelError +
                         (oa.tau > 2.0 ? kFsmAutocorrSurcharge : 0.0);
    ErrorAbs out;
    out.lo = 0.0;
    out.hi = 1.0;
    out.bias = std::min(1.0, lipschitz * oa.bias) + warmup + model;
    out.tau = std::max(max_tau(in), kFsmTauPerState * states);
    out.var = std::min(1.0, lipschitz * lipschitz) * oa.var +
              sample_var(in.exact, out.tau, in.stream_length);
    return out;
  };
}

ErrorTransfer bernstein(unsigned degree) {
  return [degree](const ErrorTransferInput& in) {
    const double period =
        static_cast<double>((std::uint64_t{1} << in.width) - 1);
    double bias = 0.0;
    double var = 0.0;
    double r = 0.0;
    for (std::size_t k = 0; k < in.operands.size(); ++k) {
      bias += in.operands[k].bias;
      var += in.operands[k].var;
      for (std::size_t j = 0; j < k; ++j) {
        r = std::max(r, residual_of(in, static_cast<unsigned>(j),
                                    static_cast<unsigned>(k)));
      }
    }
    ErrorAbs out;
    out.lo = 0.0;
    out.hi = 1.0;
    // Correlated copies skew the popcount off its binomial law — at
    // full correlation it collapses to {0, degree}.
    out.corr = r * kBernsteinCorrShare * trivial(in.exact);
    // degree+1 private coefficient SNGs quantize like any input.
    out.bias = bias + out.corr + (degree + 1) * 1.5 / period;
    out.tau = max_tau(in);
    out.var = var + (degree + 1) *
                        sample_var(in.exact, out.tau, in.stream_length);
    return out;
  };
}

ErrorTransfer weighted_mux(std::vector<double> weights) {
  return [weights = std::move(weights)](const ErrorTransferInput& in) {
    double total = 0.0;
    for (const double w : weights) total += w;
    const double n = static_cast<double>(std::max<std::size_t>(
        in.stream_length, 1));
    const double period =
        static_cast<double>((std::uint64_t{1} << in.width) - 1);
    // The select decode is uniform over 2^k patterns but the LFSR period
    // is 2^w - 1: each pattern's frequency sits up to 1/P off its weight,
    // plus the partial-period remainder.
    const double select_bias =
        static_cast<double>(weights.size()) / period +
        0.5 * std::fmod(n, period) / n * (n >= period ? 1.0 : 0.0);
    ErrorAbs out;
    out.lo = 1.0;
    out.hi = 0.0;
    out.bias = select_bias;
    out.var = 0.0;
    for (std::size_t k = 0; k < weights.size(); ++k) {
      const double share = weights[k] / total;
      out.lo = std::min(out.lo, in.operands[k].lo);
      out.hi = std::max(out.hi, in.operands[k].hi);
      out.bias += share * in.operands[k].bias;
      out.var += share * share * in.operands[k].var;
    }
    out.tau = max_tau(in);
    out.var += out.tau * 0.25 / n;  // select sampling across the window
    return out;
  };
}

ErrorTransfer roberts_cross() {
  return [](const ErrorTransferInput& in) {
    const double n = static_cast<double>(std::max<std::size_t>(
        in.stream_length, 1));
    const double period =
        static_cast<double>((std::uint64_t{1} << in.width) - 1);
    const double select_bias =
        0.5 / period + 0.5 * std::fmod(n, period) / n * (n >= period ? 1. : 0.);
    const auto gradient = [&](unsigned i, unsigned j) {
      const double a = in.exact_operands[i];
      const double b = in.exact_operands[j];
      // XOR gradient at residual r off SCC = +1 (see xor_subtract).
      return residual_of(in, i, j) *
             (std::min(a + b, 2.0 - a - b) - std::abs(a - b));
    };
    double bias = select_bias;
    double var = 0.0;
    for (const unsigned k : {0u, 1u, 2u, 3u}) {
      bias += 0.5 * in.operands[k].bias;
      var += 0.25 * in.operands[k].var;
    }
    ErrorAbs out;
    out.lo = 0.0;
    out.hi = 1.0;
    out.corr = 0.5 * (gradient(0, 3) + gradient(1, 2));
    out.bias = bias + out.corr;
    out.tau = max_tau(in);
    out.var = var + sample_var(in.exact, out.tau, in.stream_length);
    return out;
  };
}

}  // namespace sc::graph::error_transfers
