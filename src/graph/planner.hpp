/// \file planner.hpp
/// Correlation analysis and manipulator insertion for dataflow graphs.
///
/// Analysis: every stream carries a *lineage* - the set of RNG groups its
/// bits derive from.  Two streams are classified
///   kPositive    if they are inputs of the same RNG group (shared trace),
///   kIndependent if their lineages are disjoint,
///   kUnknown     otherwise (shared ancestry through ops - the paper's
///                "computation-induced correlation" whose exact level "is
///                not well-understood", §II-B).
/// The planner is conservative: any op whose requirement is not provably
/// met gets a fix.
///
/// Strategies mirror the paper's §IV comparison:
///   kNone         - insert nothing; violations are recorded (the paper's
///                   "SC No Manipulation" design)
///   kRegeneration - S/D + D/S both operands (shared / distinct /
///                   complementary RNG for +1 / 0 / -1)
///   kManipulation - synchronizer / decorrelator / desynchronizer in-stream
/// Every plan carries the inserted hardware as a netlist so strategies can
/// be compared on cost as well as accuracy.

#pragma once

#include <string>
#include <vector>

#include "graph/dataflow.hpp"
#include "hw/netlist.hpp"

namespace sc::graph {

/// Provable correlation relation between two streams.
enum class Relation { kPositive, kIndependent, kUnknown };

std::string to_string(Relation relation);

/// Classifies the relation between two nodes from lineage analysis.
Relation classify(const DataflowGraph& graph, NodeId a, NodeId b);

/// Insertion strategy (see file comment).
enum class Strategy { kNone, kRegeneration, kManipulation };

std::string to_string(Strategy strategy);

/// Fix inserted in front of one op's operand pair.
enum class FixKind {
  kNone,
  kSynchronizer,             ///< drive SCC -> +1 in-stream
  kDesynchronizer,           ///< drive SCC -> -1 in-stream
  kDecorrelator,             ///< drive SCC -> 0 in-stream
  kRegenerateShared,         ///< S/D + D/S both operands, one shared RNG
  kRegenerateDistinct,       ///< S/D + D/S, independent RNGs
  kRegenerateComplementary,  ///< S/D + D/S, complementary RNG pair
};

std::string to_string(FixKind kind);

/// Planned fix for one op node.
struct PlannedFix {
  NodeId op_node = 0;
  OpKind op = OpKind::kMultiply;
  Requirement requirement = Requirement::kAgnostic;
  Relation relation = Relation::kUnknown;
  FixKind fix = FixKind::kNone;
};

/// Full insertion plan for a graph under one strategy.
struct Plan {
  Strategy strategy = Strategy::kNone;
  std::vector<PlannedFix> fixes;      ///< one entry per op node
  std::vector<NodeId> violations;     ///< ops left unsatisfied (kNone only)
  hw::Netlist overhead;               ///< all inserted hardware
  std::size_t inserted_units = 0;     ///< manipulators or regenerators

  /// Fix planned for a given op node (kNone if none).
  FixKind fix_for(NodeId op_node) const;
};

/// Computes the insertion plan for a graph under a strategy.
/// `sync_depth` configures inserted synchronizers/desynchronizers;
/// `shuffle_depth` the inserted decorrelators; `width` the regenerator
/// counters and comparators.
struct PlannerConfig {
  unsigned sync_depth = 2;
  std::size_t shuffle_depth = 8;
  unsigned width = 8;
};

Plan plan_insertions(const DataflowGraph& graph, Strategy strategy,
                     const PlannerConfig& config = {});

}  // namespace sc::graph
