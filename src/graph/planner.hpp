/// \file planner.hpp
/// Correlation analysis and manipulator insertion for registry programs.
///
/// Analysis: every stream carries a *lineage* - the set of RNG groups its
/// bits derive from.  Two streams are classified
///   kPositive    if they are the same node, or inputs of one RNG group
///                (shared trace),
///   kIndependent if their lineages are disjoint,
///   kUnknown     otherwise (shared ancestry through ops - the paper's
///                "computation-induced correlation" whose exact level "is
///                not well-understood", §II-B).
/// The planner is conservative: any operand *pair* whose requirement (from
/// the operator registry, possibly per-pair) is not provably met gets a
/// fix.  n-ary operators are planned pairwise, so e.g. a Bernstein unit
/// fed n copies of one stream receives a decorrelator per copy pair - the
/// registry makes the planner work on operators it has never seen.  Note
/// the quadratic cost: pairwise insertion charges n(n-1)/2 units where
/// the paper's decorrelator chain over a same-source copy group needs
/// n-1; the optimizer's chain pass (src/opt/) rewrites such groups down
/// to the linear chain after planning — run opt::optimize (or set
/// ExecConfig::optimize) to get the paper's cost.
///
/// Strategies mirror the paper's §IV comparison:
///   kNone         - insert nothing; violations are recorded (the paper's
///                   "SC No Manipulation" design)
///   kRegeneration - S/D + D/S both operands (shared / distinct /
///                   complementary RNG for +1 / 0 / -1)
///   kManipulation - synchronizer / decorrelator / desynchronizer in-stream
/// Every plan carries the inserted hardware as a netlist so strategies can
/// be compared on cost as well as accuracy.
///
/// The legacy DataflowGraph entry points (classify / plan_insertions /
/// Plan) remain as thin shims over the Program planner.

#pragma once

#include <string>
#include <vector>

#include "graph/dataflow.hpp"
#include "graph/program.hpp"
#include "hw/netlist.hpp"

namespace sc::obs {
class Telemetry;
}

namespace sc::graph {

/// Provable correlation relation between two streams.
enum class Relation { kPositive, kIndependent, kUnknown };

std::string to_string(Relation relation);

/// Classifies the relation between two program nodes from lineage analysis.
Relation classify(const Program& program, NodeId a, NodeId b);

/// Legacy shim: classification on a DataflowGraph.  Converts the graph
/// and computes all lineages per call — convenient for one-off queries;
/// for many pairs of one graph, convert once with to_program() and query
/// classify(Program, ...) (or plan the whole program).
Relation classify(const DataflowGraph& graph, NodeId a, NodeId b);

/// Insertion strategy (see file comment).
enum class Strategy { kNone, kRegeneration, kManipulation };

std::string to_string(Strategy strategy);

/// Fix inserted in front of one operand pair.
enum class FixKind {
  kNone,
  kSynchronizer,             ///< drive SCC -> +1 in-stream
  kDesynchronizer,           ///< drive SCC -> -1 in-stream
  kDecorrelator,             ///< drive SCC -> 0 in-stream
  /// One link of the paper's series decorrelator chain (§III-C): the
  /// second operand becomes shuffle(first operand), composing shuffles
  /// along a same-source copy group with one single-buffer circuit per
  /// link.  Emitted by the optimizer's chain pass (never by the planner);
  /// only valid when both operands carry the same stream.
  kDecorrelatorChain,
  kRegenerateShared,         ///< S/D + D/S both operands, one shared RNG
  kRegenerateDistinct,       ///< S/D + D/S, independent RNGs
  kRegenerateComplementary,  ///< S/D + D/S, complementary RNG pair
};

std::string to_string(FixKind kind);

/// True when `kind` regenerates (S/D + D/S) rather than manipulating
/// in-stream.  Regeneration is inherently stream-wide - it counts the
/// whole operand before re-encoding - which is why the chunked engine
/// backend falls back to whole-stream execution for such plans.
bool is_regenerating(FixKind kind);

/// True when `kind` draws auxiliary RNG sequences (seeded per op node /
/// lane): decorrelators, chain links, and every regeneration kind.  An op
/// whose plan carries such a fix does not produce a stream that is a
/// deterministic function of (operator, operands) alone — which is why
/// the optimizer's CSE refuses to merge it.
bool fix_draws_rng(FixKind kind);

/// Planned fix for one operand pair of one op node.
struct PairFix {
  NodeId op_node = 0;
  unsigned operand_a = 0;  ///< first operand index (a < b)
  unsigned operand_b = 1;  ///< second operand index
  Requirement requirement = Requirement::kAgnostic;
  Relation relation = Relation::kUnknown;
  FixKind fix = FixKind::kNone;
  /// Index (into ProgramPlan::fixes) of the representative fix this one
  /// mirrors, or -1 when it is its own circuit.  The optimizer's sharing
  /// pass marks RNG-free fixes (synchronizer / desynchronizer) whose
  /// operand streams equal another fix's: in hardware one circuit fans out
  /// to every consumer, so shared fixes charge no extra cells — and since
  /// the mirrored FSM is deterministic on identical inputs, backends may
  /// keep applying the transform per consumer with bit-identical results.
  std::int32_t shared_with = -1;
};

/// Planner knobs.  `sync_depth` configures inserted synchronizers /
/// desynchronizers; `shuffle_depth` the inserted decorrelators; `width`
/// the regenerator counters and comparators.
struct PlannerConfig {
  unsigned sync_depth = 2;
  std::size_t shuffle_depth = 8;
  unsigned width = 8;
  /// Telemetry context (src/obs/): plan_program records a
  /// "planner.plan_program" span (strategy, fixes, violations) and
  /// planner.* counters into it.  Non-owning, nullptr = env fallback,
  /// exactly as ExecConfig::telemetry.
  obs::Telemetry* telemetry = nullptr;
};

/// Full insertion plan for a Program under one strategy: one PairFix per
/// examined operand pair (requirement != agnostic), in (node, pair) order.
struct ProgramPlan {
  Strategy strategy = Strategy::kNone;
  std::vector<PairFix> fixes;
  std::vector<NodeId> violations;  ///< ops left unsatisfied (kNone only)
  hw::Netlist overhead;            ///< all inserted hardware
  std::size_t inserted_units = 0;  ///< manipulators or regenerators

  /// Fixes planned for one op node, in operand-pair order.
  [[nodiscard]] std::vector<const PairFix*> fixes_for(NodeId op_node) const;
  /// True when any planned fix regenerates (see is_regenerating).
  [[nodiscard]] bool has_regeneration() const;
};

/// Computes the insertion plan for a registry program.
ProgramPlan plan_program(const Program& program, Strategy strategy,
                         const PlannerConfig& config = {});

/// True when `relation` provably meets `requirement` (the planner's
/// satisfaction rule, shared with the optimizer's safety verifier).
bool requirement_satisfied(Requirement requirement, Relation relation);

/// Inserted hardware of one fix kind under a PlannerConfig — the unit the
/// planner charges per planned fix; the optimizer uses it to re-price a
/// rewritten plan.
hw::Netlist fix_netlist(FixKind kind, const PlannerConfig& config);

// --------------------------------------------------------------- legacy API

/// Planned fix for one two-operand op node (legacy shape).
struct PlannedFix {
  NodeId op_node = 0;
  OpKind op = OpKind::kMultiply;
  Requirement requirement = Requirement::kAgnostic;
  Relation relation = Relation::kUnknown;
  FixKind fix = FixKind::kNone;
};

/// Full insertion plan for a DataflowGraph under one strategy.
struct Plan {
  Strategy strategy = Strategy::kNone;
  std::vector<PlannedFix> fixes;      ///< one entry per op node
  std::vector<NodeId> violations;     ///< ops left unsatisfied (kNone only)
  hw::Netlist overhead;               ///< all inserted hardware
  std::size_t inserted_units = 0;     ///< manipulators or regenerators

  /// Fix planned for a given op node (kNone if none).
  [[nodiscard]] FixKind fix_for(NodeId op_node) const;
};

/// Legacy shim: plans a DataflowGraph by converting it to a Program,
/// running plan_program, and mapping the pair fixes back onto the
/// two-operand nodes (ids are preserved by the conversion).
Plan plan_insertions(const DataflowGraph& graph, Strategy strategy,
                     const PlannerConfig& config = {});

/// Converts a legacy plan to the Program-plan shape (operand pair (0, 1)
/// per fixed node) so old call sites can feed the new backends.
ProgramPlan to_program_plan(const Plan& plan);

}  // namespace sc::graph
