/// \file error_transfer.hpp
/// Per-operator transfer functions of the static *accuracy* analysis
/// (src/analysis/error_model.hpp): the abstract domain one value carries
/// and the OperatorDef hook that propagates it through a gate.
///
/// The domain models what an SC value measured over an N-bit run can do:
///   * [lo, hi]   — interval guaranteed to contain E[measured]
///                  (unipolar probability space, always within [0, 1]),
///   * bias       — deterministic bound on |E[measured] - exact|:
///                  SNG quantization, partial-period sampling, residual
///                  operand correlation (the paper's §II-B bias of
///                  AND/MUX arithmetic), FSM warm-up transients,
///   * var        — variance bound of the N-bit mean estimate,
///   * tau        — autocorrelation scale of the stream in cycles (FSM
///                  outputs hold state, inflating estimator variance),
///   * corr       — the part of `bias` this operator itself added from
///                  residual correlation between its operands (what the
///                  `correlation-bias` lint diagnostic reports),
///   * saturated  — the operator clipped (saturating-add with operand
///                  sum beyond 1): `saturation-risk` diagnostic.
///
/// A transfer is sound when, for every execution the backends can
/// produce, the measured output value lies within exact +- the final
/// bound assembled by the error model (bias + n_sigma * sqrt(var),
/// capped at the trivial max(exact, 1 - exact)).  Transfers for the
/// correlation-sensitive gates take the *residual* SCC of each operand
/// pair after planned fixes — a pair left at an unknown regime widens to
/// its Frechet envelope, a decorrelator-chain link keeps a small
/// single-shuffle residual, a proven same-trace pair keeps only
/// quantization slack.
///
/// Operators without a transfer stay sound: the error model falls back
/// to the trivial bound (measured and exact both live in [0, 1]).

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/span.hpp"

namespace sc::graph {

/// Abstract accuracy state of one stream value (see file comment).
struct ErrorAbs {
  double lo = 0.0;    ///< E[measured] >= lo (unipolar space)
  double hi = 1.0;    ///< E[measured] <= hi
  double bias = 1.0;  ///< |E[measured] - exact| bound, deterministic
  double var = 0.0;   ///< variance bound of the N-bit mean estimate
  double tau = 2.0;   ///< autocorrelation scale (cycles) of the stream
  double corr = 0.0;  ///< bias share from residual operand correlation
  bool saturated = false;  ///< operator clipped at a range boundary
};

/// Everything a transfer may consult.  `residual(i, j)` (i < j, operand
/// indices) bounds how far the pair's SCC may sit from the regime the
/// operator's exact semantics assume, as a fraction of the full Frechet
/// width: 0 = exactly in regime, 1 = completely unknown.  The error
/// model derives it from the planner's fixes and the correlation
/// dataflow analysis; transfers must treat it as a bound, not a value.
struct ErrorTransferInput {
  sc::span<const ErrorAbs> operands;
  sc::span<const double> exact_operands;
  double exact = 0.0;  ///< exact output (registry semantics)
  std::function<double(unsigned i, unsigned j)> residual;
  std::size_t stream_length = 256;
  unsigned width = 8;  ///< SNG comparator width
};

/// Per-op transfer of the accuracy abstract interpreter (OperatorDef::
/// error_transfer).  Must be sound (see file comment); returning a wide
/// bound is always legal, returning a narrow one is a claim the
/// soundness property test (analysis_accuracy_property_test) measures.
using ErrorTransfer = std::function<ErrorAbs(const ErrorTransferInput&)>;

/// Ready-made sound transfers for the builtin operator families.  Custom
/// registries reuse them (tests/graph_fixtures.hpp wires `nary_and` onto
/// its 16-ary product, which is how the chain-rewrite calibration test
/// gets a non-trivial bound).
namespace error_transfers {

/// n-ary AND computing the product of mutually-uncorrelated operands
/// (multiply, product-k fan-out trees).  Residual correlation of the
/// strongest neighbour widens each accumulation step by the Frechet
/// width of the pair (E[XY] = pq + scc * (min(p,q) - pq)).
ErrorTransfer nary_and();

/// 2-ary AND as min (SCC = +1 assumed).
ErrorTransfer and_min();
/// 2-ary OR as max (SCC = +1 assumed).
ErrorTransfer or_max();
/// 2-ary OR as saturating add (SCC = -1 assumed; clipping interval and
/// the saturation flag).
ErrorTransfer or_saturating_add();
/// 2-ary XOR as |a - b| (SCC = +1 assumed).
ErrorTransfer xor_subtract();
/// MUX scaled add/sub: out = (a + b') / 2 with a private half-weight
/// select stream (b' = 1 - b when invert_y — the bipolar subtractor).
ErrorTransfer mux_scaled_add(bool invert_y);
/// XNOR bipolar multiply (uncorrelated operands assumed).
ErrorTransfer xnor_multiply_bipolar();
/// Deterministic CA toggle adder: (a + b) / 2 with O(1/N) settle.
ErrorTransfer toggle_add();
/// CORDIV divider: conservative — the quotient's convergence is not
/// usefully bounded statically, so the transfer returns the trivial
/// envelope (sound, never tight).
ErrorTransfer cordiv_divide();
/// Unary NOT (bipolar negate): exact complement.
ErrorTransfer not_negate();
/// Saturating-counter FSM functions (stanh / sexp): Lipschitz bound L
/// on the asymptotic curve, `states`-deep warm-up transient, inflated
/// model error when the input stream is itself autocorrelated.
ErrorTransfer fsm_lipschitz(double lipschitz, unsigned states);
/// Bernstein/ReSC unit of the given degree (degree mutually
/// uncorrelated copies of x + degree+1 private coefficient SNGs).
ErrorTransfer bernstein(unsigned degree);
/// Weighted MUX tree (gaussian-blur-3x3): out = sum w_i p_i / sum w.
ErrorTransfer weighted_mux(std::vector<double> weights);
/// Roberts cross: (|p0 - p3| + |p1 - p2|) / 2, diagonals at SCC = +1.
ErrorTransfer roberts_cross();

}  // namespace error_transfers

}  // namespace sc::graph
