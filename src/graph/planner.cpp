#include "graph/planner.hpp"

#include <set>

#include "hw/designs.hpp"
#include "obs/telemetry.hpp"

namespace sc::graph {
namespace {

/// Lineages (set of RNG groups) of every node, one topological pass.
std::vector<std::set<unsigned>> lineages(const Program& program) {
  std::vector<std::set<unsigned>> result(program.node_count());
  for (NodeId id = 0; id < program.node_count(); ++id) {
    const ProgramNode& node = program.node(id);
    if (node.kind != ProgramNode::Kind::kOp) {
      result[id].insert(node.rng_group);
      continue;
    }
    for (NodeId operand : node.operands) {
      result[id].insert(result[operand].begin(), result[operand].end());
    }
  }
  return result;
}

bool disjoint(const std::set<unsigned>& a, const std::set<unsigned>& b) {
  for (unsigned group : a) {
    if (b.count(group) != 0) return false;
  }
  return true;
}

Relation classify_with(const Program& program,
                       const std::vector<std::set<unsigned>>& lineage,
                       NodeId a, NodeId b) {
  if (a == b) return Relation::kPositive;  // one stream is its own SCC=+1 pair
  const ProgramNode& na = program.node(a);
  const ProgramNode& nb = program.node(b);
  if (na.kind != ProgramNode::Kind::kOp && nb.kind != ProgramNode::Kind::kOp &&
      na.rng_group == nb.rng_group) {
    return Relation::kPositive;
  }
  return disjoint(lineage[a], lineage[b]) ? Relation::kIndependent
                                          : Relation::kUnknown;
}

FixKind fix_for_requirement(Requirement requirement, Strategy strategy) {
  if (strategy == Strategy::kManipulation) {
    switch (requirement) {
      case Requirement::kPositive:
        return FixKind::kSynchronizer;
      case Requirement::kNegative:
        return FixKind::kDesynchronizer;
      case Requirement::kUncorrelated:
        return FixKind::kDecorrelator;
      case Requirement::kAgnostic:
        return FixKind::kNone;
    }
  }
  if (strategy == Strategy::kRegeneration) {
    switch (requirement) {
      case Requirement::kPositive:
        return FixKind::kRegenerateShared;
      case Requirement::kNegative:
        return FixKind::kRegenerateComplementary;
      case Requirement::kUncorrelated:
        return FixKind::kRegenerateDistinct;
      case Requirement::kAgnostic:
        return FixKind::kNone;
    }
  }
  return FixKind::kNone;
}

}  // namespace

bool requirement_satisfied(Requirement requirement, Relation relation) {
  switch (requirement) {
    case Requirement::kAgnostic:
      return true;
    case Requirement::kUncorrelated:
      return relation == Relation::kIndependent;
    case Requirement::kPositive:
      return relation == Relation::kPositive;
    case Requirement::kNegative:
      // Generation never proves negative correlation; always needs a fix.
      return false;
  }
  return false;
}

hw::Netlist fix_netlist(FixKind kind, const PlannerConfig& config) {
  switch (kind) {
    case FixKind::kNone:
      return hw::Netlist{};
    case FixKind::kSynchronizer:
      return hw::synchronizer_netlist(config.sync_depth);
    case FixKind::kDesynchronizer:
      return hw::desynchronizer_netlist(config.sync_depth);
    case FixKind::kDecorrelator:
      // Two shuffle buffers; aux RNGs amortized across insertions, charge
      // one LFSR per decorrelator as a conservative middle ground.
      return hw::decorrelator_netlist(config.shuffle_depth) +
             hw::lfsr_netlist(config.width);
    case FixKind::kDecorrelatorChain:
      // One shuffle buffer per chain link (the X side passes through).
      return hw::shuffle_buffer_netlist(config.shuffle_depth) +
             hw::lfsr_netlist(config.width);
    case FixKind::kRegenerateShared:
    case FixKind::kRegenerateDistinct:
    case FixKind::kRegenerateComplementary:
      // Both operands get an S/D + D/S unit; one RNG charged per fix
      // (shared) - distinct needs a second.
      return hw::regenerator_netlist(config.width) * 2 +
             hw::lfsr_netlist(config.width) *
                 (kind == FixKind::kRegenerateDistinct ? 2 : 1);
  }
  return hw::Netlist{};
}

std::string to_string(Relation relation) {
  switch (relation) {
    case Relation::kPositive:
      return "positive";
    case Relation::kIndependent:
      return "independent";
    case Relation::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNone:
      return "no-manipulation";
    case Strategy::kRegeneration:
      return "regeneration";
    case Strategy::kManipulation:
      return "manipulation";
  }
  return "?";
}

std::string to_string(FixKind kind) {
  switch (kind) {
    case FixKind::kNone:
      return "none";
    case FixKind::kSynchronizer:
      return "synchronizer";
    case FixKind::kDesynchronizer:
      return "desynchronizer";
    case FixKind::kDecorrelator:
      return "decorrelator";
    case FixKind::kDecorrelatorChain:
      return "decorrelator-chain";
    case FixKind::kRegenerateShared:
      return "regen-shared";
    case FixKind::kRegenerateDistinct:
      return "regen-distinct";
    case FixKind::kRegenerateComplementary:
      return "regen-complementary";
  }
  return "?";
}

bool is_regenerating(FixKind kind) {
  return kind == FixKind::kRegenerateShared ||
         kind == FixKind::kRegenerateDistinct ||
         kind == FixKind::kRegenerateComplementary;
}

bool fix_draws_rng(FixKind kind) {
  return kind == FixKind::kDecorrelator ||
         kind == FixKind::kDecorrelatorChain || is_regenerating(kind);
}

Relation classify(const Program& program, NodeId a, NodeId b) {
  return classify_with(program, lineages(program), a, b);
}

Relation classify(const DataflowGraph& graph, NodeId a, NodeId b) {
  return classify(to_program(graph), a, b);
}

std::vector<const PairFix*> ProgramPlan::fixes_for(NodeId op_node) const {
  std::vector<const PairFix*> result;
  for (const PairFix& fix : fixes) {
    if (fix.op_node == op_node && fix.fix != FixKind::kNone) {
      result.push_back(&fix);
    }
  }
  return result;
}

bool ProgramPlan::has_regeneration() const {
  for (const PairFix& fix : fixes) {
    if (is_regenerating(fix.fix)) return true;
  }
  return false;
}

ProgramPlan plan_program(const Program& program, Strategy strategy,
                         const PlannerConfig& config) {
  obs::Telemetry* const telemetry = obs::fallback(config.telemetry);
  obs::Span span(obs::tracer_of(telemetry), "planner.plan_program",
                 "planner");
  span.arg_str("strategy", to_string(strategy));
  span.arg("nodes", static_cast<std::uint64_t>(program.node_count()));
  ProgramPlan plan;
  plan.strategy = strategy;
  plan.overhead.set_label("insertion-overhead(" + to_string(strategy) + ")");

  const std::vector<std::set<unsigned>> lineage = lineages(program);

  for (NodeId op_node : program.op_nodes()) {
    const ProgramNode& node = program.node(op_node);
    const OperatorDef& def = program.def_of(op_node);
    bool violated = false;
    for (unsigned a = 0; a < node.operands.size(); ++a) {
      for (unsigned b = a + 1; b < node.operands.size(); ++b) {
        PairFix fix;
        fix.op_node = op_node;
        fix.operand_a = a;
        fix.operand_b = b;
        fix.requirement = def.requirement_between(a, b);
        if (fix.requirement == Requirement::kAgnostic) continue;
        fix.relation = classify_with(program, lineage, node.operands[a],
                                     node.operands[b]);
        if (!requirement_satisfied(fix.requirement, fix.relation)) {
          fix.fix = fix_for_requirement(fix.requirement, strategy);
          if (fix.fix == FixKind::kNone) {
            violated = true;
          } else {
            plan.overhead += fix_netlist(fix.fix, config);
            ++plan.inserted_units;
          }
        }
        plan.fixes.push_back(fix);
      }
    }
    if (violated) plan.violations.push_back(op_node);
  }
  span.arg("fixes", static_cast<std::uint64_t>(plan.fixes.size()));
  span.arg("inserted_units", static_cast<std::uint64_t>(plan.inserted_units));
  span.arg("violations", static_cast<std::uint64_t>(plan.violations.size()));
  if (telemetry != nullptr) {
    obs::MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter("planner.plans").inc();
    metrics.counter("planner.pairs_examined").add(plan.fixes.size());
    metrics.counter("planner.fixes_inserted").add(plan.inserted_units);
    metrics.counter("planner.violations").add(plan.violations.size());
  }
  return plan;
}

// --------------------------------------------------------------- legacy API

FixKind Plan::fix_for(NodeId op_node) const {
  for (const PlannedFix& fix : fixes) {
    if (fix.op_node == op_node) return fix.fix;
  }
  return FixKind::kNone;
}

Plan plan_insertions(const DataflowGraph& graph, Strategy strategy,
                     const PlannerConfig& config) {
  const Program program = to_program(graph);  // preserves node ids
  const ProgramPlan inner = plan_program(program, strategy, config);
  // One shared lineage table for the agnostic-op relation reporting below
  // (per-op classify() calls would recompute it per node).
  const std::vector<std::set<unsigned>> lineage = lineages(program);

  Plan plan;
  plan.strategy = inner.strategy;
  plan.violations = inner.violations;
  plan.overhead = inner.overhead;
  plan.inserted_units = inner.inserted_units;
  for (NodeId op_node : graph.op_nodes()) {
    PlannedFix fix;
    fix.op_node = op_node;
    fix.op = graph.node(op_node).op;
    fix.requirement = requirement_of(fix.op);
    fix.relation = Relation::kUnknown;
    for (const PairFix& pair : inner.fixes) {
      if (pair.op_node == op_node) {
        fix.relation = pair.relation;
        fix.fix = pair.fix;
        break;
      }
    }
    // Agnostic ops produce no PairFix entry; report their relation too.
    if (fix.requirement == Requirement::kAgnostic) {
      fix.relation = classify_with(program, lineage, graph.node(op_node).lhs,
                                   graph.node(op_node).rhs);
    }
    plan.fixes.push_back(fix);
  }
  return plan;
}

ProgramPlan to_program_plan(const Plan& plan) {
  ProgramPlan converted;
  converted.strategy = plan.strategy;
  converted.violations = plan.violations;
  converted.overhead = plan.overhead;
  converted.inserted_units = plan.inserted_units;
  for (const PlannedFix& fix : plan.fixes) {
    PairFix pair;
    pair.op_node = fix.op_node;
    pair.operand_a = 0;
    pair.operand_b = 1;
    pair.requirement = fix.requirement;
    pair.relation = fix.relation;
    pair.fix = fix.fix;
    converted.fixes.push_back(pair);
  }
  return converted;
}

}  // namespace sc::graph
