#include "graph/planner.hpp"

#include <set>

#include "hw/designs.hpp"

namespace sc::graph {
namespace {

/// Set of RNG groups a node's stream derives from.
std::set<unsigned> lineage(const DataflowGraph& graph, NodeId id) {
  const Node& node = graph.node(id);
  if (node.kind == Node::Kind::kInput) {
    return {node.rng_group};
  }
  std::set<unsigned> result = lineage(graph, node.lhs);
  const std::set<unsigned> rhs = lineage(graph, node.rhs);
  result.insert(rhs.begin(), rhs.end());
  return result;
}

bool satisfied(Requirement requirement, Relation relation) {
  switch (requirement) {
    case Requirement::kAgnostic:
      return true;
    case Requirement::kUncorrelated:
      return relation == Relation::kIndependent;
    case Requirement::kPositive:
      return relation == Relation::kPositive;
    case Requirement::kNegative:
      // Generation never proves negative correlation; always needs a fix.
      return false;
  }
  return false;
}

FixKind fix_for_requirement(Requirement requirement, Strategy strategy) {
  if (strategy == Strategy::kManipulation) {
    switch (requirement) {
      case Requirement::kPositive:
        return FixKind::kSynchronizer;
      case Requirement::kNegative:
        return FixKind::kDesynchronizer;
      case Requirement::kUncorrelated:
        return FixKind::kDecorrelator;
      case Requirement::kAgnostic:
        return FixKind::kNone;
    }
  }
  if (strategy == Strategy::kRegeneration) {
    switch (requirement) {
      case Requirement::kPositive:
        return FixKind::kRegenerateShared;
      case Requirement::kNegative:
        return FixKind::kRegenerateComplementary;
      case Requirement::kUncorrelated:
        return FixKind::kRegenerateDistinct;
      case Requirement::kAgnostic:
        return FixKind::kNone;
    }
  }
  return FixKind::kNone;
}

hw::Netlist fix_netlist(FixKind kind, const PlannerConfig& config) {
  switch (kind) {
    case FixKind::kNone:
      return hw::Netlist{};
    case FixKind::kSynchronizer:
      return hw::synchronizer_netlist(config.sync_depth);
    case FixKind::kDesynchronizer:
      return hw::desynchronizer_netlist(config.sync_depth);
    case FixKind::kDecorrelator:
      // Two shuffle buffers; aux RNGs amortized across insertions, charge
      // one LFSR per decorrelator as a conservative middle ground.
      return hw::decorrelator_netlist(config.shuffle_depth) +
             hw::lfsr_netlist(config.width);
    case FixKind::kRegenerateShared:
    case FixKind::kRegenerateDistinct:
    case FixKind::kRegenerateComplementary:
      // Both operands get an S/D + D/S unit; one RNG charged per fix
      // (shared) - distinct needs a second.
      return hw::regenerator_netlist(config.width) * 2 +
             hw::lfsr_netlist(config.width) *
                 (kind == FixKind::kRegenerateDistinct ? 2 : 1);
  }
  return hw::Netlist{};
}

}  // namespace

std::string to_string(Relation relation) {
  switch (relation) {
    case Relation::kPositive:
      return "positive";
    case Relation::kIndependent:
      return "independent";
    case Relation::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNone:
      return "no-manipulation";
    case Strategy::kRegeneration:
      return "regeneration";
    case Strategy::kManipulation:
      return "manipulation";
  }
  return "?";
}

std::string to_string(FixKind kind) {
  switch (kind) {
    case FixKind::kNone:
      return "none";
    case FixKind::kSynchronizer:
      return "synchronizer";
    case FixKind::kDesynchronizer:
      return "desynchronizer";
    case FixKind::kDecorrelator:
      return "decorrelator";
    case FixKind::kRegenerateShared:
      return "regen-shared";
    case FixKind::kRegenerateDistinct:
      return "regen-distinct";
    case FixKind::kRegenerateComplementary:
      return "regen-complementary";
  }
  return "?";
}

Relation classify(const DataflowGraph& graph, NodeId a, NodeId b) {
  const Node& na = graph.node(a);
  const Node& nb = graph.node(b);
  if (na.kind == Node::Kind::kInput && nb.kind == Node::Kind::kInput &&
      na.rng_group == nb.rng_group) {
    return Relation::kPositive;
  }
  const std::set<unsigned> la = lineage(graph, a);
  const std::set<unsigned> lb = lineage(graph, b);
  for (unsigned group : la) {
    if (lb.count(group) != 0) return Relation::kUnknown;
  }
  return Relation::kIndependent;
}

FixKind Plan::fix_for(NodeId op_node) const {
  for (const PlannedFix& fix : fixes) {
    if (fix.op_node == op_node) return fix.fix;
  }
  return FixKind::kNone;
}

Plan plan_insertions(const DataflowGraph& graph, Strategy strategy,
                     const PlannerConfig& config) {
  Plan plan;
  plan.strategy = strategy;
  plan.overhead.set_label("insertion-overhead(" + to_string(strategy) + ")");

  for (NodeId op_node : graph.op_nodes()) {
    const Node& node = graph.node(op_node);
    PlannedFix fix;
    fix.op_node = op_node;
    fix.op = node.op;
    fix.requirement = requirement_of(node.op);
    fix.relation = classify(graph, node.lhs, node.rhs);

    if (!satisfied(fix.requirement, fix.relation)) {
      fix.fix = fix_for_requirement(fix.requirement, strategy);
      if (fix.fix == FixKind::kNone) {
        plan.violations.push_back(op_node);
      } else {
        plan.overhead += fix_netlist(fix.fix, config);
        ++plan.inserted_units;
      }
    }
    plan.fixes.push_back(fix);
  }
  return plan;
}

}  // namespace sc::graph
