/// \file backend.hpp
/// Pluggable execution backends for registry programs.
///
/// An ExecutorBackend turns (Program, ProgramPlan, ExecConfig) into a
/// bit-true ExecutionResult.  Three implementations ship:
///
///  * ReferenceBackend — everything bit-serial: operators step one cycle
///    at a time, planned fixes run the per-cycle FSMs (core::apply).  The
///    semantics oracle.
///  * KernelBackend — whole-stream with the table-driven kernel layer
///    (src/kernel/) for fixes and the operators' word-parallel paths.
///  * EngineBackend — chunked streaming: node streams advance one
///    fixed-size chunk at a time with FSM/evaluator state carried across
///    chunk boundaries, so arbitrarily long streams execute in O(nodes x
///    chunk) memory (set ExecConfig::keep_streams = false); optionally
///    bound to an engine::Session whose pool fans independent nodes of
///    each topological level and whose chunk size / accounting it uses.
///    Regeneration fixes are inherently stream-wide (they count the whole
///    operand before re-encoding), so plans containing them fall back to
///    whole-stream execution.
///
/// All three are bit-identical on the same (Program, ProgramPlan,
/// ExecConfig) — enforced by differential tests — because every random
/// decision derives from seeds.hpp's (node, role, lane) scheme and every
/// fast path is a proven-equivalent rewrite of the serial one.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

namespace sc::engine {
class Session;
}

namespace sc::fault {
struct FaultPlan;
}

namespace sc::obs {
class Telemetry;
}

namespace sc::graph {

/// Execution parameters.
struct ExecConfig {
  std::size_t stream_length = 256;
  unsigned width = 8;          ///< SNG comparator width
  std::uint32_t seed = 3;      ///< base seed of the derivation scheme
  unsigned sync_depth = 2;     ///< depth of inserted (de)synchronizers
  std::size_t shuffle_depth = 8;
  /// Legacy knob of the execute() shim: route fixes through the
  /// table-driven kernels (KernelBackend) or the bit-serial reference
  /// path (ReferenceBackend).  Backends obtained via make_backend ignore
  /// it — the backend *is* the choice.
  bool use_kernels = true;
  /// Materialize every node's stream in the result.  Set false on the
  /// engine backend to run long streams in O(chunk) memory (streams stay
  /// empty; output values are still exact reductions).
  bool keep_streams = true;
  /// Run opt::optimize as the front of every backend: the default pass
  /// pipeline (chain decorrelators, CSE, constant folding, dead-value
  /// elimination, correction sharing) rewrites the program/plan before
  /// execution.  Streams and output_nodes in the result are mapped back
  /// to the caller's node ids (removed nodes get empty streams, merged
  /// duplicates share the survivor's stream).  Off by default so existing
  /// plans execute exactly as handed in.
  bool optimize = false;
  /// Run the static analyzer (src/analysis/) over the *incoming*
  /// (program, plan) before anything executes — before opt::optimize, so
  /// findings name the caller's nodes.  Error-class diagnostics
  /// (requirement-violation, exact seed-collision) abort the run with
  /// std::runtime_error carrying the findings; warnings and notes only
  /// count into telemetry (analysis.* counters).  Off by default: the
  /// analyzer is a verification gate, not an execution dependency.
  bool analyze = false;
  /// Fault-injection campaign (src/fault/): error models applied to named
  /// stream edges and planned fix FSMs during execution, identically on
  /// every backend — edge corruption is a pure function of (fault seed,
  /// edge name, absolute bit index), so chunking cannot move it, and FSM
  /// corruption wraps the fix in a kernel-less decorator every backend
  /// steps bit-serially.  Non-owning; the plan must outlive the run.
  /// nullptr (the default) injects nothing.  With ExecConfig::optimize,
  /// faults resolve against the *optimized* program: a fault naming a
  /// value the optimizer removed (including a CSE-merged duplicate — the
  /// value lives on under the survivor's name, the duplicate's wire does
  /// not) vanishes with it, and an FSM fault on a correction-shared fix
  /// wipes every sibling consumer of the one physical circuit.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Telemetry context (src/obs/): metrics counters, RAII tracing spans
  /// (planner / optimizer passes / per-node and per-chunk execution), and
  /// stream-health probes are recorded into it during the run — on every
  /// backend, without changing a single output bit (telemetry neutrality
  /// is enforced by obs_test and the golden corpus).  Non-owning; must
  /// outlive the run.  nullptr (the default) falls back to the
  /// process-wide SC_TRACE / SC_METRICS env context (obs::Telemetry::
  /// from_env) and, with neither set, records nothing and costs one
  /// predictable branch per instrumentation site.
  obs::Telemetry* telemetry = nullptr;
};

/// Per-output accuracy and the overall summary.
struct ExecutionResult {
  std::vector<NodeId> output_nodes;
  std::vector<double> values;      ///< measured SC values
  std::vector<double> exact;       ///< float semantics
  std::vector<double> abs_errors;  ///< |measured - exact|
  double mean_abs_error = 0.0;

  /// The streams of every node (index = NodeId), for inspection.  Empty
  /// when the run had keep_streams = false.
  std::vector<Bitstream> streams;
};

/// Uniform execution interface over a planned program.
class ExecutorBackend {
 public:
  virtual ~ExecutorBackend() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual ExecutionResult run(const Program& program, const ProgramPlan& plan,
                              const ExecConfig& config) = 0;
};

enum class BackendKind { kReference, kKernel, kEngine };

/// Creates a backend.  kEngine made this way runs unthreaded with the
/// default chunk size; bind a session with make_engine_backend for pooled
/// execution.
std::unique_ptr<ExecutorBackend> make_backend(BackendKind kind);

/// Engine backend bound to a session: uses its chunk size, fans the nodes
/// of each topological level across its pool, and records chunked-run
/// stats.  The session must outlive the backend.  Do not call run() from
/// inside one of the same session's jobs (the fan-out would self-deadlock
/// on the pool).
std::unique_ptr<ExecutorBackend> make_engine_backend(engine::Session& session);

/// Every auxiliary seed a run of `plan` on `program` derives, in
/// deterministic order: group traces, operator-private slots
/// (OperatorDef::rng_slots), and per-fix RNGs.  These are the *32-bit
/// folds the LFSRs are actually seeded with* (seeds::derive_seed32,
/// including its 0 -> 1 remap), not the 64-bit mixes — the 64-bit values
/// are distinct by construction, so auditing them would be vacuous; the
/// fold is where a birthday or remap collision could silently run two
/// "independent" generators on one schedule.  The regression test asserts
/// pairwise distinctness on large plans under the default base seed.
std::vector<std::uint32_t> derived_seeds(const Program& program,
                                         const ProgramPlan& plan,
                                         const ExecConfig& config);

}  // namespace sc::graph
