#include "graph/executor.hpp"

#include <cassert>
#include <map>
#include <memory>

#include "bitstream/encoding.hpp"
#include "convert/regenerator.hpp"
#include "core/decorrelator.hpp"
#include "engine/session.hpp"
#include "core/desynchronizer.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "kernel/apply.hpp"
#include "rng/lfsr.hpp"

namespace sc::graph {
namespace {

using StreamPairRef = std::pair<Bitstream, Bitstream>;

/// Regenerates both operands from one shared trace with the second
/// comparator complemented, producing SCC = -1 between the outputs.
StreamPairRef regenerate_complementary(const Bitstream& a, const Bitstream& b,
                                       rng::RandomSource& source) {
  const std::size_t n = a.size();
  const std::uint32_t mask =
      static_cast<std::uint32_t>(source.range() - 1);
  const std::uint64_t level_a =
      n == 0 ? 0 : (a.count_ones() * source.range() + n / 2) / n;
  const std::uint64_t level_b =
      n == 0 ? 0 : (b.count_ones() * source.range() + n / 2) / n;
  Bitstream out_a(n);
  Bitstream out_b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = source.next();
    if (r < level_a) out_a.set(i, true);
    // Complemented comparator: uses mask - r, so the 1-regions of the two
    // outputs overlap as little as possible.
    if ((mask - r) < level_b) out_b.set(i, true);
  }
  return {std::move(out_a), std::move(out_b)};
}

}  // namespace

ExecutionResult execute(const DataflowGraph& graph, const Plan& plan,
                        const ExecConfig& config) {
  const std::size_t n = config.stream_length;
  // 64-bit: `1u << 32` is UB and a uint32 period wraps to 0 at width 32
  // (same class of bug as Sng::natural_length_).
  const std::uint64_t natural = std::uint64_t{1} << config.width;

  // --- group traces ---------------------------------------------------------
  std::map<unsigned, std::vector<std::uint32_t>> traces;
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const Node& node = graph.node(id);
    if (node.kind != Node::Kind::kInput) continue;
    if (traces.count(node.rng_group) != 0) continue;
    rng::Lfsr source(config.width, config.seed + 7 * node.rng_group + 1);
    std::vector<std::uint32_t> trace(n);
    for (std::size_t i = 0; i < n; ++i) trace[i] = source.next();
    traces.emplace(node.rng_group, std::move(trace));
  }

  ExecutionResult result;
  result.streams.resize(graph.node_count());

  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const Node& node = graph.node(id);
    if (node.kind == Node::Kind::kInput) {
      const std::uint64_t level = unipolar_level64(node.value, natural);
      const auto& trace = traces.at(node.rng_group);
      Bitstream stream(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (trace[i] < level) stream.set(i, true);
      }
      result.streams[id] = std::move(stream);
      continue;
    }

    Bitstream a = result.streams[node.lhs];
    Bitstream b = result.streams[node.rhs];

    // Planned FSM fixes run through the table-driven kernel layer by
    // default (bit-identical to core::apply, word-parallel); use_kernels
    // false forces the per-cycle reference path.
    const auto apply_fix = [&config](core::PairTransform& transform,
                                     const Bitstream& sa,
                                     const Bitstream& sb) {
      return config.use_kernels ? kernel::apply(transform, sa, sb)
                                : core::apply(transform, sa, sb);
    };

    // --- planned fix --------------------------------------------------------
    switch (plan.fix_for(id)) {
      case FixKind::kNone:
        break;
      case FixKind::kSynchronizer: {
        core::Synchronizer sync({config.sync_depth, false});
        const sc::StreamPair out = apply_fix(sync, a, b);
        a = out.x;
        b = out.y;
        break;
      }
      case FixKind::kDesynchronizer: {
        core::Desynchronizer desync({config.sync_depth, false});
        const sc::StreamPair out = apply_fix(desync, a, b);
        a = out.x;
        b = out.y;
        break;
      }
      case FixKind::kDecorrelator: {
        // The second buffer's source is rotated so the two address
        // schedules stay distinct even if the seeds land on nearby states
        // of the shared m-sequence (lockstep buffers do not decorrelate).
        core::Decorrelator dec(
            config.shuffle_depth,
            std::make_unique<rng::Lfsr>(config.width,
                                        config.seed + 1001 + 2 * id),
            std::make_unique<rng::Lfsr>(config.width,
                                        config.seed + 1002 + 2 * id,
                                        /*rotation=*/3));
        const sc::StreamPair out = apply_fix(dec, a, b);
        a = out.x;
        b = out.y;
        break;
      }
      case FixKind::kRegenerateShared: {
        rng::Lfsr source(config.width, config.seed + 2001 + id);
        const auto bus = convert::regenerate_bus_correlated({a, b}, source);
        a = bus[0];
        b = bus[1];
        break;
      }
      case FixKind::kRegenerateDistinct: {
        rng::Lfsr source_a(config.width, config.seed + 2001 + 2 * id);
        rng::Lfsr source_b(config.width, config.seed + 2002 + 2 * id);
        a = convert::regenerate(a, source_a);
        b = convert::regenerate(b, source_b);
        break;
      }
      case FixKind::kRegenerateComplementary: {
        rng::Lfsr source(config.width, config.seed + 2001 + id);
        auto pair = regenerate_complementary(a, b, source);
        a = std::move(pair.first);
        b = std::move(pair.second);
        break;
      }
    }

    // --- the op itself --------------------------------------------------------
    switch (node.op) {
      case OpKind::kMultiply:
      case OpKind::kMin:
        result.streams[id] = a & b;
        break;
      case OpKind::kMax:
      case OpKind::kSaturatingAdd:
        result.streams[id] = a | b;
        break;
      case OpKind::kSubtractAbs:
        result.streams[id] = a ^ b;
        break;
      case OpKind::kScaledAdd: {
        rng::Lfsr select_source(config.width, config.seed + 3001 + id);
        Bitstream select(n);
        const std::uint64_t half = natural / 2;
        for (std::size_t i = 0; i < n; ++i) {
          if (select_source.next() < half) select.set(i, true);
        }
        result.streams[id] = Bitstream::mux(a, b, select);
        break;
      }
    }
  }

  // --- outputs ---------------------------------------------------------------
  double total = 0.0;
  for (NodeId output : graph.outputs()) {
    result.output_nodes.push_back(output);
    const double value = result.streams[output].value();
    const double exact = graph.exact_value(output);
    result.values.push_back(value);
    result.exact.push_back(exact);
    result.abs_errors.push_back(std::abs(value - exact));
    total += std::abs(value - exact);
  }
  result.mean_abs_error =
      result.output_nodes.empty()
          ? 0.0
          : total / static_cast<double>(result.output_nodes.size());
  return result;
}

std::vector<ExecConfig> seeded_sweep(const ExecConfig& base, std::size_t count,
                                     const engine::Session& session) {
  std::vector<ExecConfig> configs(count, base);
  for (std::size_t i = 0; i < count; ++i) {
    // Strided, not hashed: the executor's LFSRs keep only config.width
    // seed bits, and the sweep must stay collision-free in that range.
    configs[i].seed =
        engine::strided_seed32(session.config().base_seed, i);
  }
  return configs;
}

std::vector<ExecutionResult> execute_batch(const DataflowGraph& graph,
                                           const Plan& plan,
                                           const std::vector<ExecConfig>& configs,
                                           engine::Session& session) {
  return session.map<ExecutionResult>(
      configs.size(), [&graph, &plan, &configs](std::size_t i) {
        return execute(graph, plan, configs[i]);
      });
}

}  // namespace sc::graph
