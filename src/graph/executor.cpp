#include "graph/executor.hpp"

#include "engine/session.hpp"

namespace sc::graph {

ExecutionResult execute(const DataflowGraph& graph, const Plan& plan,
                        const ExecConfig& config) {
  const Program program = to_program(graph);  // node ids preserved
  const ProgramPlan program_plan = to_program_plan(plan);
  return make_backend(config.use_kernels ? BackendKind::kKernel
                                         : BackendKind::kReference)
      ->run(program, program_plan, config);
}

std::vector<ExecConfig> seeded_sweep(const ExecConfig& base, std::size_t count,
                                     const engine::Session& session) {
  std::vector<ExecConfig> configs(count, base);
  for (std::size_t i = 0; i < count; ++i) {
    // Strided, not hashed: the executor's LFSRs keep only config.width
    // seed bits, and the sweep must stay collision-free in that range.
    configs[i].seed =
        engine::strided_seed32(session.config().base_seed, i);
  }
  return configs;
}

std::vector<ExecutionResult> execute_batch(const DataflowGraph& graph,
                                           const Plan& plan,
                                           const std::vector<ExecConfig>& configs,
                                           engine::Session& session) {
  // Convert once; each job then runs the whole-stream kernel/reference
  // path on its own config (pure function of the config -> thread-count
  // invariant).
  const Program program = to_program(graph);
  const ProgramPlan program_plan = to_program_plan(plan);
  return session.map<ExecutionResult>(
      configs.size(), [&program, &program_plan, &configs](std::size_t i) {
        return make_backend(configs[i].use_kernels ? BackendKind::kKernel
                                                   : BackendKind::kReference)
            ->run(program, program_plan, configs[i]);
      });
}

}  // namespace sc::graph
