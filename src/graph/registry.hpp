/// \file registry.hpp
/// The operator registry: one definition per SC operation, consumed
/// uniformly by the builder, planner, executor backends, and cost model.
///
/// The paper's circuits exist to be "inserted at appropriate points in the
/// computation" (§I) — which requires the computation layer to be open.
/// An OperatorDef bundles everything the system needs to know about one
/// operation:
///   * name and arity (operators may take any number of operands),
///   * the correlation Requirement between each operand pair (paper
///     Fig. 2's "Operand Correlation" row, generalized to n-ary ops),
///   * exact floating-point semantics for error measurement,
///   * a factory for the bit-serial gate/FSM implementation (OpEvaluator),
///     optionally with a word-parallel kernel path,
///   * the operator's standard-cell contribution for the hw cost model.
/// Registering a definition is all it takes for the planner to insert
/// manipulating circuits in front of it and for every ExecutorBackend to
/// run it — no switch statement anywhere knows the operator set.
///
/// The built-in registry covers the Fig. 2 set (multiply, scaled add,
/// saturating add, subtract, max, min, divide), the CA toggle adder,
/// bipolar arithmetic, the Brown–Card FSM functions (stanh, sexp), a
/// Bernstein/ReSC polynomial unit, and the §IV image-pipeline stages
/// (3x3 Gaussian-blur MUX tree, Roberts cross) as composite operators.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "common/span.hpp"
#include "graph/error_transfer.hpp"
#include "graph/seeds.hpp"
#include "hw/netlist.hpp"
#include "rng/random_source.hpp"

namespace sc::graph {

using NodeId = std::uint32_t;

/// Index of an operator inside a registry.
using OpId = std::uint32_t;

/// Operand-correlation requirement of an operand pair (paper Fig. 2).
enum class Requirement {
  kUncorrelated,
  kPositive,
  kNegative,
  kAgnostic,
};

std::string to_string(Requirement requirement);

/// How an operator's output stream relates, correlation-wise, to its
/// operand streams — the per-operator transfer function of the static
/// correlation dataflow analysis (src/analysis/).  The classification is
/// about *provability*, not hardware cost:
///
///  * kPreserving — a monotone combinational gate (AND/OR trees).  Fed
///    threshold encodings of one RNG trace (uniform comparison direction),
///    the output is again a threshold encoding of that trace, so SCC = +1
///    against every same-trace peer is preserved exactly.
///  * kInverting — complements its operand (NOT): a threshold encoding
///    comes out as the complementary encoding, flipping the SCC sign
///    against same-trace peers.
///  * kDestroying — everything else (XOR/XNOR non-monotone gates, FSMs,
///    MUX trees and any evaluator drawing private RNG): the output's
///    correlation against other streams is not statically provable and
///    the analysis must widen to "unknown".
///
/// Declaring kPreserving/kInverting for an operator whose gate is not
/// actually monotone/complementing makes the analyzer unsound — the
/// property test (analysis_property_test) checks declared effects against
/// measured SCC on random programs.
enum class CorrelationEffect {
  kDestroying,
  kPreserving,
  kInverting,
};

std::string to_string(CorrelationEffect effect);

/// Largest operator arity a registry accepts (the serial evaluator path
/// gathers one bit per operand into a fixed stack buffer).
inline constexpr unsigned kMaxArity = 16;

/// Per-run, per-node execution context handed to evaluator factories.
/// Provides the deterministic operator-private RNGs (seeds.hpp roles), so
/// an operator draws identical sequences in every backend.
struct OpContext {
  std::size_t stream_length = 0;
  unsigned width = 8;              ///< RNG/SNG width in bits
  NodeId node = 0;                 ///< node id (keys the private seeds)
  std::uint64_t base_seed = 0;

  /// Operator-private LFSR for `slot` (distinct slots, distinct seeds).
  [[nodiscard]] rng::RandomSourcePtr make_rng(unsigned slot) const;
  /// Natural comparator range 2^width (64-bit: width 32 must not wrap).
  [[nodiscard]] std::uint64_t natural() const {
    return std::uint64_t{1} << width;
  }
};

/// Stateful per-node evaluator of one operator over one run.
///
/// The bit-serial step() is the reference semantics; process() is the
/// word/chunk path and MUST be bit-identical (the default implementation
/// just loops step(), so only override it with a provably equivalent
/// word-parallel form).  State carries across process() calls, so backends
/// may drive an evaluator chunk-at-a-time: begin() is called once with the
/// total stream length, then chunks arrive in order.
class OpEvaluator {
 public:
  virtual ~OpEvaluator() = default;

  /// Announces the total stream length before the first bit/chunk.
  virtual void begin(std::size_t /*total_length*/) {}

  /// Consumes one bit per operand, emits the cycle's output bit.
  virtual bool step(const bool* operand_bits) = 0;

  /// Advances one chunk: `ins` holds one pointer per operand to an
  /// equal-length chunk (pointers, so backends can pass unmodified
  /// producer buffers without copying), `out` is preallocated to the same
  /// length.  Default loops step(); backends drive the reference
  /// semantics with a non-virtual `OpEvaluator::process` call.
  virtual void process(sc::span<const Bitstream* const> ins, Bitstream& out);
};

/// Everything the system knows about one operator.
struct OperatorDef {
  std::string name;
  unsigned arity = 2;

  /// Uniform requirement between every operand pair.
  Requirement requirement = Requirement::kAgnostic;
  /// Optional per-pair override (operand indices i < j); when set it takes
  /// precedence over `requirement` (e.g. Roberts cross needs SCC = +1
  /// between its diagonal pairs only).
  std::function<Requirement(unsigned i, unsigned j)> pair_requirement;

  /// Exact floating-point semantics over operand stream values.
  std::function<double(sc::span<const double>)> exact;

  /// Factory for the per-run evaluator (bit-serial, optionally with a
  /// word-parallel process() override).
  std::function<std::unique_ptr<OpEvaluator>(const OpContext&)> make_evaluator;

  /// Transfer function of the static correlation analysis (see
  /// CorrelationEffect).  The conservative default — kDestroying — is
  /// always sound; only declare kPreserving/kInverting for operators whose
  /// bit-level implementation provably warrants it.  Ignored by the
  /// analyzer (treated as kDestroying) whenever rng_slots > 0.
  CorrelationEffect correlation_effect = CorrelationEffect::kDestroying;

  /// Number of operator-private RNG slots the evaluator draws via
  /// OpContext::make_rng (0 for pure gates).  Lets seed audits enumerate
  /// every derived seed of a plan (backend.hpp's derived_seeds).
  unsigned rng_slots = 0;

  /// Transfer function of the static *accuracy* analysis
  /// (error_transfer.hpp; consumed by analysis::plan_accuracy): how the
  /// operator propagates value intervals, deterministic bias, and
  /// stochastic variance bounds, including its sensitivity to residual
  /// operand correlation.  Optional: operators without one fall back to
  /// the trivial-but-sound envelope max(exact, 1 - exact), so the
  /// analysis stays conservative rather than wrong.  Every builtin
  /// registers one (the error_transfers:: factories).
  ErrorTransfer error_transfer;

  /// Standard-cell contribution of one instance (RNG-fed operators charge
  /// their private generators here).  May be empty (zero cells).
  std::function<hw::Netlist(unsigned width)> netlist;

  /// Requirement between operand pair (i, j), i < j.
  [[nodiscard]] Requirement requirement_between(unsigned i, unsigned j) const {
    return pair_requirement ? pair_requirement(i, j) : requirement;
  }
};

/// Name-indexed collection of operator definitions.
///
/// Lookups are by name (builder-facing) or OpId (the dense index programs
/// store).  Registration is append-only; mutating a registry while
/// programs built against it execute is the caller's race to avoid.
class OperatorRegistry {
 public:
  /// Registers a definition.  Throws std::invalid_argument on a duplicate
  /// name, empty name, arity outside [1, kMaxArity], or missing exact /
  /// make_evaluator functions.
  OpId add(OperatorDef def);

  const OperatorDef& def(OpId id) const { return defs_[id]; }
  [[nodiscard]] std::size_t size() const { return defs_.size(); }

  /// Definition by name, nullptr when absent.
  const OperatorDef* find(const std::string& name) const;
  /// Id by name; throws std::invalid_argument when absent.
  [[nodiscard]] OpId id_of(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;

  /// Fresh registry pre-populated with the built-in operator set.
  static OperatorRegistry with_builtins();

 private:
  std::vector<OperatorDef> defs_;
};

/// Process-wide default registry (built-ins registered on first use).
/// Custom operators may be added at startup; tests that register
/// throwaway operators should use OperatorRegistry::with_builtins().
OperatorRegistry& registry();

/// Registers a Bernstein/ReSC polynomial operator approximating `f` with
/// the given degree into `target`: arity = degree mutually-uncorrelated
/// copies of x, coefficient streams generated internally from private
/// RNGs (they are constants in real designs).  Returns the new OpId.
OpId register_bernstein(OperatorRegistry& target, std::string name,
                        const std::function<double(double)>& f,
                        std::size_t degree);

}  // namespace sc::graph
