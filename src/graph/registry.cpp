#include "graph/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "arith/add.hpp"
#include "arith/divide.hpp"
#include "bitstream/encoding.hpp"
#include "func/bernstein.hpp"
#include "func/fsm_function.hpp"
#include "hw/designs.hpp"
#include "rng/lfsr.hpp"

namespace sc::graph {

std::string to_string(CorrelationEffect effect) {
  switch (effect) {
    case CorrelationEffect::kDestroying:
      return "destroying";
    case CorrelationEffect::kPreserving:
      return "preserving";
    case CorrelationEffect::kInverting:
      return "inverting";
  }
  return "?";
}

std::string to_string(Requirement requirement) {
  switch (requirement) {
    case Requirement::kUncorrelated:
      return "uncorrelated";
    case Requirement::kPositive:
      return "positive";
    case Requirement::kNegative:
      return "negative";
    case Requirement::kAgnostic:
      return "agnostic";
  }
  return "?";
}

rng::RandomSourcePtr OpContext::make_rng(unsigned slot) const {
  return std::make_unique<rng::Lfsr>(
      width, seeds::derive_seed32(base_seed, node, seeds::Role::kOpPrivate,
                                  slot));
}

void OpEvaluator::process(sc::span<const Bitstream* const> ins,
                          Bitstream& out) {
  bool bits[kMaxArity];
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < ins.size(); ++k) bits[k] = ins[k]->get(i);
    if (step(bits)) out.set(i, true);
  }
}

namespace {

// ------------------------------------------------------------ evaluators

/// Stateless two-input gates, with the word-parallel Bitstream operators
/// as the kernel path (bit-identical: both are the same boolean function).
class GateEvaluator final : public OpEvaluator {
 public:
  enum class Gate { kAnd, kOr, kXor, kXnor };
  explicit GateEvaluator(Gate gate) : gate_(gate) {}

  bool step(const bool* in) override {
    switch (gate_) {
      case Gate::kAnd:
        return in[0] && in[1];
      case Gate::kOr:
        return in[0] || in[1];
      case Gate::kXor:
        return in[0] != in[1];
      case Gate::kXnor:
        return in[0] == in[1];
    }
    return false;
  }

  void process(sc::span<const Bitstream* const> ins,
               Bitstream& out) override {
    // Word loop into the caller's preallocated buffer: the engine backend
    // calls this once per chunk, so no per-call allocation.
    const std::vector<Bitstream::Word>& x = ins[0]->words();
    const std::vector<Bitstream::Word>& y = ins[1]->words();
    Bitstream::Word* w = out.word_data();
    switch (gate_) {
      case Gate::kAnd:
        for (std::size_t i = 0; i < x.size(); ++i) w[i] = x[i] & y[i];
        break;
      case Gate::kOr:
        for (std::size_t i = 0; i < x.size(); ++i) w[i] = x[i] | y[i];
        break;
      case Gate::kXor:
        for (std::size_t i = 0; i < x.size(); ++i) w[i] = x[i] ^ y[i];
        break;
      case Gate::kXnor:
        for (std::size_t i = 0; i < x.size(); ++i) w[i] = ~(x[i] ^ y[i]);
        mask_tail(out);  // XNOR of clear tails is 1s; restore the invariant
        break;
    }
  }

 private:
  static void mask_tail(Bitstream& out) {
    const unsigned rem = out.size() % 64;
    if (rem != 0 && out.word_count() > 0) {
      out.word_data()[out.word_count() - 1] &=
          (Bitstream::Word{1} << rem) - 1;
    }
  }

 private:
  Gate gate_;
};

/// Bipolar negation (NOT), arity 1.
class NotEvaluator final : public OpEvaluator {
 public:
  bool step(const bool* in) override { return !in[0]; }
  void process(sc::span<const Bitstream* const> ins,
               Bitstream& out) override {
    const std::vector<Bitstream::Word>& x = ins[0]->words();
    Bitstream::Word* w = out.word_data();
    for (std::size_t i = 0; i < x.size(); ++i) w[i] = ~x[i];
    const unsigned rem = out.size() % 64;
    if (rem != 0 && out.word_count() > 0) {
      w[out.word_count() - 1] &= (Bitstream::Word{1} << rem) - 1;
    }
  }
};

/// MUX scaled add/subtract: out = sel ? Y : X with a private half-weight
/// select stream (optionally inverting the Y leg for bipolar subtract).
/// No word-parallel override: the select RNG advances one draw per cycle,
/// so the default step() loop is the single source of the sequence.
class MuxEvaluator final : public OpEvaluator {
 public:
  MuxEvaluator(const OpContext& ctx, bool invert_y)
      : source_(ctx.make_rng(0)), half_(ctx.natural() / 2),
        invert_y_(invert_y) {}

  bool step(const bool* in) override {
    const bool sel = source_->next() < half_;
    const bool y = invert_y_ ? !in[1] : in[1];
    return sel ? y : in[0];
  }

 private:
  rng::RandomSourcePtr source_;
  std::uint64_t half_;
  bool invert_y_;
};

/// CORDIV divider (paper Fig. 2e) — stateful, bit-serial by definition.
class CordivEvaluator final : public OpEvaluator {
 public:
  bool step(const bool* in) override { return cell_.step(in[0], in[1]); }

 private:
  arith::Cordiv cell_;
};

/// Deterministic CA toggle adder (paper ref [9] class).
class ToggleAddEvaluator final : public OpEvaluator {
 public:
  bool step(const bool* in) override { return cell_.step(in[0], in[1]); }

 private:
  arith::ToggleAdder cell_;
};

/// Brown–Card saturating-counter FSM functions (stanh / sexp).
class StanhEvaluator final : public OpEvaluator {
 public:
  explicit StanhEvaluator(unsigned states) : fsm_(states) {}
  bool step(const bool* in) override { return fsm_.step(in[0]); }

 private:
  func::Stanh fsm_;
};

class SexpEvaluator final : public OpEvaluator {
 public:
  SexpEvaluator(unsigned states, unsigned g) : fsm_(states, g) {}
  bool step(const bool* in) override { return fsm_.step(in[0]); }

 private:
  func::Sexp fsm_;
};

/// ReSC/Bernstein unit: per cycle, the popcount of the n operand bits (the
/// copies of x) selects one of n+1 coefficient streams, each generated by
/// a private comparator SNG.  All coefficient SNGs advance every cycle,
/// exactly like the free-running hardware streams they model.
class BernsteinEvaluator final : public OpEvaluator {
 public:
  BernsteinEvaluator(const OpContext& ctx,
                     const std::vector<double>& coefficients) {
    sources_.reserve(coefficients.size());
    levels_.reserve(coefficients.size());
    for (std::size_t i = 0; i < coefficients.size(); ++i) {
      sources_.push_back(ctx.make_rng(static_cast<unsigned>(i)));
      levels_.push_back(unipolar_level64(coefficients[i], ctx.natural()));
    }
  }

  bool step(const bool* in) override {
    std::size_t count = 0;
    const std::size_t copies = sources_.size() - 1;
    for (std::size_t k = 0; k < copies; ++k) count += in[k] ? 1 : 0;
    bool out = false;
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      const bool bit = sources_[i]->next() < levels_[i];
      if (i == count) out = bit;
    }
    return out;
  }

 private:
  std::vector<rng::RandomSourcePtr> sources_;
  std::vector<std::uint64_t> levels_;
};

/// 3x3 Gaussian-blur MUX tree (§IV pipeline stage): a private select RNG
/// picks one window pixel per cycle with binomial weights {1,2,1;2,4,2;
/// 1,2,1}/16.  Operands are the window in row-major order.
class GaussianBlurEvaluator final : public OpEvaluator {
 public:
  explicit GaussianBlurEvaluator(const OpContext& ctx)
      : source_(ctx.make_rng(0)) {}

  bool step(const bool* in) override {
    // Low 4 select bits address the 16-slot weight expansion.
    const std::uint32_t r = source_->next() & 15u;
    return in[kSelectTable[r]];
  }

  static constexpr double kWeights[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};

 private:
  // Each window index appears weight-many times (binomial expansion).
  static constexpr std::uint8_t kSelectTable[16] = {0, 1, 1, 2, 3, 3, 4, 4,
                                                    4, 4, 5, 5, 6, 7, 7, 8};
  rng::RandomSourcePtr source_;
};

constexpr double GaussianBlurEvaluator::kWeights[9];
constexpr std::uint8_t GaussianBlurEvaluator::kSelectTable[16];

/// Roberts-cross edge magnitude (§IV pipeline stage): XOR the two window
/// diagonals, scale-add the gradients with a private MUX select.  Operands
/// are the 2x2 window [p00, p01, p10, p11]; the XORs need SCC = +1 between
/// each diagonal pair — the mismatch that motivates the paper.
class RobertsCrossEvaluator final : public OpEvaluator {
 public:
  explicit RobertsCrossEvaluator(const OpContext& ctx)
      : source_(ctx.make_rng(0)), half_(ctx.natural() / 2) {}

  bool step(const bool* in) override {
    const bool g1 = in[0] != in[3];
    const bool g2 = in[1] != in[2];
    return (source_->next() < half_) ? g2 : g1;
  }

 private:
  rng::RandomSourcePtr source_;
  std::uint64_t half_;
};

// ------------------------------------------------------------- exact fns

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

// --------------------------------------------------------------- builtins

template <typename Fn>
OperatorDef binary_op(std::string name, Requirement requirement, Fn exact,
                      GateEvaluator::Gate gate,
                      std::function<hw::Netlist(unsigned)> netlist,
                      ErrorTransfer error_transfer) {
  OperatorDef def;
  def.name = std::move(name);
  def.arity = 2;
  def.requirement = requirement;
  def.exact = [exact](sc::span<const double> v) { return exact(v[0], v[1]); };
  def.make_evaluator = [gate](const OpContext&) {
    return std::make_unique<GateEvaluator>(gate);
  };
  def.error_transfer = std::move(error_transfer);
  // AND/OR are monotone: thresholds in, threshold out (min/max of the
  // comparison levels), so the analyzer may propagate same-trace claims
  // through them.  XOR/XNOR are not monotone — destroying.
  def.correlation_effect = (gate == GateEvaluator::Gate::kAnd ||
                            gate == GateEvaluator::Gate::kOr)
                               ? CorrelationEffect::kPreserving
                               : CorrelationEffect::kDestroying;
  def.netlist = std::move(netlist);
  return def;
}

void register_builtins(OperatorRegistry& reg) {
  using Gate = GateEvaluator::Gate;

  // --- the Fig. 2 set -----------------------------------------------------
  reg.add(binary_op(
      "multiply", Requirement::kUncorrelated,
      [](double a, double b) { return a * b; }, Gate::kAnd,
      [](unsigned) { return hw::and_gate_netlist(); },
      error_transfers::nary_and()));

  {
    OperatorDef def;
    def.name = "scaled-add";
    def.arity = 2;
    def.requirement = Requirement::kAgnostic;
    def.exact = [](sc::span<const double> v) { return 0.5 * (v[0] + v[1]); };
    def.make_evaluator = [](const OpContext& ctx) {
      return std::make_unique<MuxEvaluator>(ctx, /*invert_y=*/false);
    };
    def.rng_slots = 1;
    def.netlist = [](unsigned width) {
      return hw::mux_adder_netlist() + hw::lfsr_netlist(width);
    };
    def.error_transfer = error_transfers::mux_scaled_add(/*invert_y=*/false);
    reg.add(std::move(def));
  }

  reg.add(binary_op(
      "saturating-add", Requirement::kNegative,
      [](double a, double b) { return std::min(1.0, a + b); }, Gate::kOr,
      [](unsigned) { return hw::or_gate_netlist(); },
      error_transfers::or_saturating_add()));

  reg.add(binary_op(
      "subtract", Requirement::kPositive,
      [](double a, double b) { return std::abs(a - b); }, Gate::kXor,
      [](unsigned) { return hw::xor_gate_netlist(); },
      error_transfers::xor_subtract()));

  reg.add(binary_op(
      "max", Requirement::kPositive,
      [](double a, double b) { return std::max(a, b); }, Gate::kOr,
      [](unsigned) { return hw::or_gate_netlist(); },
      error_transfers::or_max()));

  reg.add(binary_op(
      "min", Requirement::kPositive,
      [](double a, double b) { return std::min(a, b); }, Gate::kAnd,
      [](unsigned) { return hw::and_gate_netlist(); },
      error_transfers::and_min()));

  {
    // CORDIV divide (Fig. 2e): quotient for positively correlated operands
    // with pX <= pY; with pY = 0 the DFF never samples and emits 0s.
    OperatorDef def;
    def.name = "divide";
    def.arity = 2;
    def.requirement = Requirement::kPositive;
    def.exact = [](sc::span<const double> v) {
      return v[1] > 0.0 ? std::min(1.0, v[0] / v[1]) : 0.0;
    };
    def.make_evaluator = [](const OpContext&) {
      return std::make_unique<CordivEvaluator>();
    };
    def.netlist = [](unsigned) { return hw::cordiv_netlist(); };
    def.error_transfer = error_transfers::cordiv_divide();
    reg.add(std::move(def));
  }

  // --- correlation-agnostic and bipolar arithmetic ------------------------
  {
    OperatorDef def;
    def.name = "toggle-add";
    def.arity = 2;
    def.requirement = Requirement::kAgnostic;
    def.exact = [](sc::span<const double> v) { return 0.5 * (v[0] + v[1]); };
    def.make_evaluator = [](const OpContext&) {
      return std::make_unique<ToggleAddEvaluator>();
    };
    def.netlist = [](unsigned) { return hw::toggle_adder_netlist(); };
    def.error_transfer = error_transfers::toggle_add();
    reg.add(std::move(def));
  }

  reg.add(binary_op(
      "multiply-bipolar", Requirement::kUncorrelated,
      [](double a, double b) {
        return clamp01(0.5 * ((2 * a - 1) * (2 * b - 1) + 1));
      },
      Gate::kXnor, [](unsigned) { return hw::xnor_gate_netlist(); },
      error_transfers::xnor_multiply_bipolar()));

  {
    OperatorDef def;
    def.name = "negate-bipolar";
    def.arity = 1;
    def.correlation_effect = CorrelationEffect::kInverting;
    def.exact = [](sc::span<const double> v) { return 1.0 - v[0]; };
    def.make_evaluator = [](const OpContext&) {
      return std::make_unique<NotEvaluator>();
    };
    def.netlist = [](unsigned) {
      return hw::Netlist("negate-bipolar").add(hw::Cell::kInv);
    };
    def.error_transfer = error_transfers::not_negate();
    reg.add(std::move(def));
  }

  {
    OperatorDef def;
    def.name = "scaled-sub-bipolar";
    def.arity = 2;
    def.requirement = Requirement::kAgnostic;
    // vZ = 0.5 (vX - vY)  <=>  pZ = (pX - pY + 1) / 2.
    def.exact = [](sc::span<const double> v) {
      return clamp01(0.5 * (v[0] - v[1] + 1.0));
    };
    def.make_evaluator = [](const OpContext& ctx) {
      return std::make_unique<MuxEvaluator>(ctx, /*invert_y=*/true);
    };
    def.rng_slots = 1;
    def.netlist = [](unsigned width) {
      return hw::mux_adder_netlist() + hw::lfsr_netlist(width) +
             hw::Netlist().add(hw::Cell::kInv);
    };
    def.error_transfer = error_transfers::mux_scaled_add(/*invert_y=*/true);
    reg.add(std::move(def));
  }

  // --- FSM function units (Brown & Card; outside the Fig. 2 set) ----------
  {
    static constexpr unsigned kStates = 8;
    OperatorDef def;
    def.name = "stanh-8";
    def.arity = 1;
    def.exact = [](sc::span<const double> v) {
      return clamp01(0.5 * (func::stanh_value(2 * v[0] - 1, kStates) + 1));
    };
    def.make_evaluator = [](const OpContext&) {
      return std::make_unique<StanhEvaluator>(kStates);
    };
    def.netlist = [](unsigned) { return hw::fsm_unit_netlist(kStates); };
    def.error_transfer =
        error_transfers::fsm_lipschitz(/*lipschitz=*/kStates / 2.0, kStates);
    reg.add(std::move(def));
  }

  {
    static constexpr unsigned kStates = 8;
    static constexpr unsigned kG = 1;
    OperatorDef def;
    def.name = "sexp-8-1";
    def.arity = 1;
    def.exact = [](sc::span<const double> v) {
      return clamp01(func::sexp_value(2 * v[0] - 1, kStates, kG));
    };
    def.make_evaluator = [](const OpContext&) {
      return std::make_unique<SexpEvaluator>(kStates, kG);
    };
    def.netlist = [](unsigned) { return hw::fsm_unit_netlist(kStates); };
    def.error_transfer =
        error_transfers::fsm_lipschitz(/*lipschitz=*/kStates / 2.0, kStates);
    reg.add(std::move(def));
  }

  // --- Bernstein/ReSC polynomial unit (Qian & Riedel) ---------------------
  register_bernstein(reg, "bernstein-x2-3",
                     [](double t) { return t * t; }, /*degree=*/3);

  // --- §IV image-pipeline stages as composite operators -------------------
  {
    OperatorDef def;
    def.name = "gaussian-blur-3x3";
    def.arity = 9;
    def.requirement = Requirement::kAgnostic;
    def.exact = [](sc::span<const double> v) {
      double sum = 0.0;
      for (std::size_t i = 0; i < 9; ++i) {
        sum += GaussianBlurEvaluator::kWeights[i] * v[i];
      }
      return sum / 16.0;
    };
    def.make_evaluator = [](const OpContext& ctx) {
      if (ctx.width < 4) {
        throw std::invalid_argument(
            "gaussian-blur-3x3 needs width >= 4 (16-slot select decode)");
      }
      return std::make_unique<GaussianBlurEvaluator>(ctx);
    };
    def.rng_slots = 1;
    def.netlist = [](unsigned width) { return hw::mux_tree_netlist(9, width); };
    def.error_transfer = error_transfers::weighted_mux(
        {1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0});
    reg.add(std::move(def));
  }

  {
    OperatorDef def;
    def.name = "roberts-cross";
    def.arity = 4;
    def.requirement = Requirement::kAgnostic;
    def.pair_requirement = [](unsigned i, unsigned j) {
      const bool diagonal = (i == 0 && j == 3) || (i == 1 && j == 2);
      return diagonal ? Requirement::kPositive : Requirement::kAgnostic;
    };
    def.exact = [](sc::span<const double> v) {
      return 0.5 * (std::abs(v[0] - v[3]) + std::abs(v[1] - v[2]));
    };
    def.make_evaluator = [](const OpContext& ctx) {
      return std::make_unique<RobertsCrossEvaluator>(ctx);
    };
    def.rng_slots = 1;
    def.netlist = [](unsigned width) {
      return hw::roberts_cross_netlist() + hw::lfsr_netlist(width);
    };
    def.error_transfer = error_transfers::roberts_cross();
    reg.add(std::move(def));
  }
}

}  // namespace

OpId OperatorRegistry::add(OperatorDef def) {
  if (def.name.empty()) {
    throw std::invalid_argument("OperatorRegistry::add: empty name");
  }
  if (def.arity < 1 || def.arity > kMaxArity) {
    throw std::invalid_argument("OperatorRegistry::add: arity of '" +
                                def.name + "' outside [1, " +
                                std::to_string(kMaxArity) + "]");
  }
  if (!def.exact || !def.make_evaluator) {
    throw std::invalid_argument("OperatorRegistry::add: '" + def.name +
                                "' needs exact and make_evaluator");
  }
  if (find(def.name) != nullptr) {
    throw std::invalid_argument("OperatorRegistry::add: duplicate operator '" +
                                def.name + "'");
  }
  defs_.push_back(std::move(def));
  return static_cast<OpId>(defs_.size() - 1);
}

const OperatorDef* OperatorRegistry::find(const std::string& name) const {
  for (const OperatorDef& def : defs_) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

OpId OperatorRegistry::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return static_cast<OpId>(i);
  }
  throw std::invalid_argument("OperatorRegistry: unknown operator '" + name +
                              "'");
}

std::vector<std::string> OperatorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(defs_.size());
  for (const OperatorDef& def : defs_) out.push_back(def.name);
  return out;
}

OperatorRegistry OperatorRegistry::with_builtins() {
  OperatorRegistry reg;
  register_builtins(reg);
  return reg;
}

OperatorRegistry& registry() {
  static OperatorRegistry instance = OperatorRegistry::with_builtins();
  return instance;
}

OpId register_bernstein(OperatorRegistry& target, std::string name,
                        const std::function<double(double)>& f,
                        std::size_t degree) {
  if (degree < 1 || degree + 1 > kMaxArity) {
    throw std::invalid_argument("register_bernstein: degree outside range");
  }
  const std::vector<double> coefficients =
      func::bernstein_coefficients(f, degree);
  OperatorDef def;
  def.name = std::move(name);
  def.arity = static_cast<unsigned>(degree);
  // The architecture requires n mutually uncorrelated copies of x — the
  // canonical consumer of the paper's decorrelator (func/bernstein.hpp).
  def.requirement = Requirement::kUncorrelated;
  def.exact = [coefficients](sc::span<const double> v) {
    return func::resc_expected(
        sc::span<const double>(coefficients.data(), coefficients.size()), v);
  };
  def.make_evaluator = [coefficients](const OpContext& ctx) {
    return std::make_unique<BernsteinEvaluator>(ctx, coefficients);
  };
  def.rng_slots = static_cast<unsigned>(degree + 1);
  def.netlist = [degree](unsigned width) {
    return hw::resc_netlist(degree, width);
  };
  def.error_transfer =
      error_transfers::bernstein(static_cast<unsigned>(degree));
  return target.add(std::move(def));
}

}  // namespace sc::graph
