/// \file executor.hpp
/// Bit-true execution of a dataflow graph under an insertion plan.
///
/// Inputs are encoded with comparator SNGs: nodes of the same RNG group
/// share one LFSR trace (maximally correlated), different groups use
/// independently seeded LFSRs.  Ops run the real gate/MUX implementations;
/// planned fixes instantiate the real synchronizer / desynchronizer /
/// decorrelator FSMs or regeneration, so the executor measures exactly what
/// the planned hardware would compute.

#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "graph/dataflow.hpp"
#include "graph/planner.hpp"

namespace sc::engine {
class Session;
}

namespace sc::graph {

/// Execution parameters.
struct ExecConfig {
  std::size_t stream_length = 256;
  unsigned width = 8;          ///< SNG comparator width
  std::uint32_t seed = 3;      ///< base seed for group and auxiliary LFSRs
  unsigned sync_depth = 2;     ///< depth of inserted (de)synchronizers
  std::size_t shuffle_depth = 8;
  /// Run planned fixes through the table-driven kernels (src/kernel/)
  /// where available.  Bit-identical to the bit-serial FSMs; set false to
  /// force the per-cycle reference path.
  bool use_kernels = true;
};

/// Per-output accuracy and the overall summary.
struct ExecutionResult {
  std::vector<NodeId> output_nodes;
  std::vector<double> values;      ///< measured SC values
  std::vector<double> exact;       ///< float semantics
  std::vector<double> abs_errors;  ///< |measured - exact|
  double mean_abs_error = 0.0;

  /// The streams of every node (index = NodeId), for inspection.
  std::vector<Bitstream> streams;
};

/// Runs the graph with the plan's fixes applied.
ExecutionResult execute(const DataflowGraph& graph, const Plan& plan,
                        const ExecConfig& config = {});

/// `count` copies of `base` whose seeds are the session's deterministic
/// per-job seeds — the standard way to set up an accuracy sweep batch.
std::vector<ExecConfig> seeded_sweep(const ExecConfig& base, std::size_t count,
                                     const engine::Session& session);

/// Executes the graph once per config, fanned across the session's pool.
/// Each job is a pure function of its config, so results are ordered by
/// config index and bit-identical for every thread count (including a
/// sequential loop over execute()).
std::vector<ExecutionResult> execute_batch(const DataflowGraph& graph,
                                           const Plan& plan,
                                           const std::vector<ExecConfig>& configs,
                                           engine::Session& session);

}  // namespace sc::graph
