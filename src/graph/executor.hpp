/// \file executor.hpp
/// Legacy execution entry points (thin shims over the backend layer).
///
/// Execution proper lives in backend.hpp: a Program plus a ProgramPlan
/// runs on any ExecutorBackend (reference / kernel / engine), and all
/// backends are bit-identical.  execute() keeps the original
/// DataflowGraph signature by converting the graph and plan and running
/// the kernel backend (or the bit-serial reference backend when
/// ExecConfig::use_kernels is false).
///
/// Migration map (see README "Operator registry & backends"):
///   DataflowGraph          -> GraphBuilder / Program   (program.hpp)
///   plan_insertions(graph) -> plan_program(program)    (planner.hpp)
///   execute(graph, plan)   -> make_backend(kind)->run(program, plan, cfg)
///   ExecConfig::use_kernels-> BackendKind::{kReference, kKernel, kEngine}

#pragma once

#include <cstdint>
#include <vector>

#include "graph/backend.hpp"
#include "graph/dataflow.hpp"
#include "graph/planner.hpp"

namespace sc::engine {
class Session;
}

namespace sc::graph {

/// Runs the graph with the plan's fixes applied (legacy signature).
ExecutionResult execute(const DataflowGraph& graph, const Plan& plan,
                        const ExecConfig& config = {});

/// `count` copies of `base` whose seeds are the session's deterministic
/// per-job seeds — the standard way to set up an accuracy sweep batch.
std::vector<ExecConfig> seeded_sweep(const ExecConfig& base, std::size_t count,
                                     const engine::Session& session);

/// Executes the graph once per config, fanned across the session's pool.
/// Each job is a pure function of its config, so results are ordered by
/// config index and bit-identical for every thread count (including a
/// sequential loop over execute()).
std::vector<ExecutionResult> execute_batch(const DataflowGraph& graph,
                                           const Plan& plan,
                                           const std::vector<ExecConfig>& configs,
                                           engine::Session& session);

}  // namespace sc::graph
