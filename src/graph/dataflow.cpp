#include "graph/dataflow.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sc::graph {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kMultiply:
      return "multiply";
    case OpKind::kScaledAdd:
      return "scaled-add";
    case OpKind::kSaturatingAdd:
      return "saturating-add";
    case OpKind::kSubtractAbs:
      return "subtract";
    case OpKind::kMax:
      return "max";
    case OpKind::kMin:
      return "min";
  }
  return "?";
}

std::string to_string(Requirement requirement) {
  switch (requirement) {
    case Requirement::kUncorrelated:
      return "uncorrelated";
    case Requirement::kPositive:
      return "positive";
    case Requirement::kNegative:
      return "negative";
    case Requirement::kAgnostic:
      return "agnostic";
  }
  return "?";
}

Requirement requirement_of(OpKind kind) {
  switch (kind) {
    case OpKind::kMultiply:
      return Requirement::kUncorrelated;
    case OpKind::kScaledAdd:
      return Requirement::kAgnostic;
    case OpKind::kSaturatingAdd:
      return Requirement::kNegative;
    case OpKind::kSubtractAbs:
    case OpKind::kMax:
    case OpKind::kMin:
      return Requirement::kPositive;
  }
  return Requirement::kAgnostic;
}

NodeId DataflowGraph::add_input(std::string name, double value,
                                unsigned rng_group) {
  Node node;
  node.kind = Node::Kind::kInput;
  node.name = std::move(name);
  node.value = std::clamp(value, 0.0, 1.0);
  node.rng_group = rng_group;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId DataflowGraph::add_op(OpKind kind, NodeId lhs, NodeId rhs) {
  assert(lhs < nodes_.size() && rhs < nodes_.size());
  Node node;
  node.kind = Node::Kind::kOp;
  node.name = to_string(kind);
  node.op = kind;
  node.lhs = lhs;
  node.rhs = rhs;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void DataflowGraph::mark_output(NodeId node) {
  assert(node < nodes_.size());
  outputs_.push_back(node);
}

std::vector<NodeId> DataflowGraph::op_nodes() const {
  std::vector<NodeId> ops;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == Node::Kind::kOp) ops.push_back(id);
  }
  return ops;
}

double DataflowGraph::exact_value(NodeId id) const {
  const Node& n = nodes_[id];
  if (n.kind == Node::Kind::kInput) return n.value;
  const double a = exact_value(n.lhs);
  const double b = exact_value(n.rhs);
  switch (n.op) {
    case OpKind::kMultiply:
      return a * b;
    case OpKind::kScaledAdd:
      return 0.5 * (a + b);
    case OpKind::kSaturatingAdd:
      return std::min(1.0, a + b);
    case OpKind::kSubtractAbs:
      return std::abs(a - b);
    case OpKind::kMax:
      return std::max(a, b);
    case OpKind::kMin:
      return std::min(a, b);
  }
  return 0.0;
}

}  // namespace sc::graph
