#include "graph/dataflow.hpp"

#include <algorithm>
#include <cassert>

#include "graph/program.hpp"

namespace sc::graph {

std::string to_string(OpKind kind) {
  return registry().def(op_id_for(kind)).name;
}

OpId op_id_for(OpKind kind) {
  switch (kind) {
    case OpKind::kMultiply:
      return registry().id_of("multiply");
    case OpKind::kScaledAdd:
      return registry().id_of("scaled-add");
    case OpKind::kSaturatingAdd:
      return registry().id_of("saturating-add");
    case OpKind::kSubtractAbs:
      return registry().id_of("subtract");
    case OpKind::kMax:
      return registry().id_of("max");
    case OpKind::kMin:
      return registry().id_of("min");
  }
  return registry().id_of("multiply");
}

Requirement requirement_of(OpKind kind) {
  return registry().def(op_id_for(kind)).requirement;
}

NodeId DataflowGraph::add_input(std::string name, double value,
                                unsigned rng_group) {
  Node node;
  node.kind = Node::Kind::kInput;
  node.name = std::move(name);
  node.value = std::clamp(value, 0.0, 1.0);
  node.rng_group = rng_group;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId DataflowGraph::add_op(OpKind kind, NodeId lhs, NodeId rhs) {
  assert(lhs < nodes_.size() && rhs < nodes_.size());
  Node node;
  node.kind = Node::Kind::kOp;
  node.name = to_string(kind);
  node.op = kind;
  node.lhs = lhs;
  node.rhs = rhs;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void DataflowGraph::mark_output(NodeId node) {
  assert(node < nodes_.size());
  outputs_.push_back(node);
}

std::vector<NodeId> DataflowGraph::op_nodes() const {
  std::vector<NodeId> ops;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == Node::Kind::kOp) ops.push_back(id);
  }
  return ops;
}

double DataflowGraph::exact_value(NodeId id) const {
  // One topological pass over all nodes (naive recursion is exponential
  // on DAGs with shared subexpressions).
  std::vector<double> values(nodes_.size(), 0.0);
  for (NodeId n = 0; n <= id; ++n) {
    const Node& node = nodes_[n];
    if (node.kind == Node::Kind::kInput) {
      values[n] = node.value;
      continue;
    }
    const double operands[2] = {values[node.lhs], values[node.rhs]};
    values[n] = registry().def(op_id_for(node.op)).exact(
        sc::span<const double>(operands, 2));
  }
  return values[id];
}

Program to_program(const DataflowGraph& graph) {
  GraphBuilder builder(registry());
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const Node& node = graph.node(id);
    Value v;
    if (node.kind == Node::Kind::kInput) {
      // raw_input: DataflowGraph never restricted names or group ids, so
      // the shim must not reject what the legacy API accepted (names are
      // uniquified; any rng_group passes through).
      v = builder.raw_input(node.name, node.value, node.rng_group);
    } else {
      v = builder.op(op_id_for(node.op), {Value{node.lhs}, Value{node.rhs}});
    }
    // Node ids are preserved because the builder appends in order.
    assert(v.id == id);
    (void)v;
  }
  for (NodeId output : graph.outputs()) builder.output(Value{output});
  return builder.build();
}

}  // namespace sc::graph
