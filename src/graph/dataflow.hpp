/// \file dataflow.hpp
/// Legacy two-operand SC dataflow graphs (thin shim over Program).
///
/// The computation layer now lives in the operator registry
/// (registry.hpp) and registry programs (program.hpp): operators are
/// open-ended, n-ary, and execute on pluggable backends (backend.hpp).
/// DataflowGraph remains for call sites written against the original
/// closed six-op API; it stores the same node shape as before and
/// converts losslessly (ids preserved) into a Program via to_program().
/// Semantics — requirements, exact values, names — are delegated to the
/// registry definitions, so they are stated exactly once.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/registry.hpp"

namespace sc::graph {

/// Two-operand SC operations (the Fig. 2 set plus max/min).
enum class OpKind {
  kMultiply,       ///< AND; requires SCC = 0
  kScaledAdd,      ///< MUX; operand-correlation agnostic (select matters)
  kSaturatingAdd,  ///< OR; requires SCC = -1
  kSubtractAbs,    ///< XOR; requires SCC = +1
  kMax,            ///< OR; requires SCC = +1
  kMin,            ///< AND; requires SCC = +1
};

std::string to_string(OpKind kind);

/// Registry id of a legacy op kind (in the process-wide registry()).
OpId op_id_for(OpKind kind);

std::string to_string(Requirement requirement);  // see registry.hpp

/// Requirement of each op (from its registry definition).
Requirement requirement_of(OpKind kind);

/// One graph node: either a generated input or a two-operand op.
struct Node {
  enum class Kind { kInput, kOp };
  Kind kind = Kind::kInput;
  std::string name;

  // Input fields.
  double value = 0.0;        ///< unipolar value in [0, 1]
  unsigned rng_group = 0;    ///< inputs sharing a group share an RNG trace

  // Op fields.
  OpKind op = OpKind::kMultiply;
  NodeId lhs = 0;
  NodeId rhs = 0;
};

class Program;

/// A DAG of SC operations.  Nodes are created in topological order (ops may
/// only reference already-created nodes).
class DataflowGraph {
 public:
  /// Adds a generated input with a value and an RNG sharing group.
  /// Inputs in the same group are encoded from one RNG trace (SCC = +1
  /// between them); different groups use independent sources.
  NodeId add_input(std::string name, double value, unsigned rng_group);

  /// Adds a two-operand operation.  Operands must already exist.
  NodeId add_op(OpKind kind, NodeId lhs, NodeId rhs);

  /// Marks a node as a graph output.
  void mark_output(NodeId node);

  const Node& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Ids of all op nodes, in creation (topological) order.
  [[nodiscard]] std::vector<NodeId> op_nodes() const;

  /// Exact floating-point value of a node via the registry semantics
  /// (scaled add = 0.5(a+b), saturating add = min(1, a+b), etc.).
  [[nodiscard]] double exact_value(NodeId id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> outputs_;
};

/// Converts a legacy graph into a registry Program.  Node ids are
/// preserved 1:1 (node i of the graph is node i of the program), so plans
/// and results translate without remapping.
Program to_program(const DataflowGraph& graph);

}  // namespace sc::graph
