/// \file dataflow.hpp
/// Correlation-aware SC dataflow graphs.
///
/// The paper's circuits exist to be "inserted at appropriate points in the
/// computation" (§I).  This module provides the computation: a small
/// dataflow graph of SC operations, each annotated with the operand
/// correlation it requires (paper Fig. 2), plus exact floating-point
/// semantics for error measurement.  The planner (planner.hpp) decides
/// where manipulating circuits (or regenerators) must be inserted, and the
/// executor (executor.hpp) runs the graph on real bitstreams with the
/// planned fixes applied.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sc::graph {

/// Two-operand SC operations (the Fig. 2 set plus max/min).
enum class OpKind {
  kMultiply,       ///< AND; requires SCC = 0
  kScaledAdd,      ///< MUX; operand-correlation agnostic (select matters)
  kSaturatingAdd,  ///< OR; requires SCC = -1
  kSubtractAbs,    ///< XOR; requires SCC = +1
  kMax,            ///< OR; requires SCC = +1
  kMin,            ///< AND; requires SCC = +1
};

std::string to_string(OpKind kind);

/// Operand-correlation requirement of an operation (paper Fig. 2's
/// "Operand Correlation" row).
enum class Requirement {
  kUncorrelated,
  kPositive,
  kNegative,
  kAgnostic,
};

std::string to_string(Requirement requirement);

/// Requirement of each op.
Requirement requirement_of(OpKind kind);

using NodeId = std::uint32_t;

/// One graph node: either a generated input or a two-operand op.
struct Node {
  enum class Kind { kInput, kOp };
  Kind kind = Kind::kInput;
  std::string name;

  // Input fields.
  double value = 0.0;        ///< unipolar value in [0, 1]
  unsigned rng_group = 0;    ///< inputs sharing a group share an RNG trace

  // Op fields.
  OpKind op = OpKind::kMultiply;
  NodeId lhs = 0;
  NodeId rhs = 0;
};

/// A DAG of SC operations.  Nodes are created in topological order (ops may
/// only reference already-created nodes).
class DataflowGraph {
 public:
  /// Adds a generated input with a value and an RNG sharing group.
  /// Inputs in the same group are encoded from one RNG trace (SCC = +1
  /// between them); different groups use independent sources.
  NodeId add_input(std::string name, double value, unsigned rng_group);

  /// Adds a two-operand operation.  Operands must already exist.
  NodeId add_op(OpKind kind, NodeId lhs, NodeId rhs);

  /// Marks a node as a graph output.
  void mark_output(NodeId node);

  const Node& node(NodeId id) const { return nodes_[id]; }
  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Ids of all op nodes, in creation (topological) order.
  std::vector<NodeId> op_nodes() const;

  /// Exact floating-point value of a node (scaled add = 0.5(a+b),
  /// saturating add = min(1, a+b), subtract = |a-b|, etc.).
  double exact_value(NodeId id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> outputs_;
};

}  // namespace sc::graph
