/// \file error_model.hpp
/// Static accuracy analysis: an abstract interpreter that propagates the
/// graph::ErrorAbs domain (value interval, deterministic bias bound,
/// stochastic variance bound at stream length N) through a planned
/// program, yielding a sound per-output error bound *before anything
/// runs*.
///
/// The paper quantifies what correlation does to SC arithmetic only by
/// simulation; this model makes the same question answerable statically.
/// Each input/constant gets the exact LFSR-SNG envelope (quantization to
/// the comparator grid, partial-period sampling bias when N is not a
/// multiple of the generator period, hypergeometric variance when N is
/// shorter than one period).  Each operator applies its registered
/// OperatorDef::error_transfer — AND-multiply widened by the Frechet
/// envelope of each operand pair's *residual* correlation after planned
/// fixes, MUX scaled-add select-stream noise, saturating-add clipping,
/// FSM Lipschitz + warm-up terms, and so on — and operators without a
/// transfer fall back to the trivial-but-sound envelope
/// max(exact, 1 - exact).  Residuals come from the correlation dataflow
/// analysis (analyzer.hpp): a pair the analyzer proved SCC +1 by
/// threshold-generator propagation keeps only quantization slack, a
/// decorrelator-chain link keeps the single-shuffle residual, an
/// unproven pair widens to the full Frechet width.
///
/// Soundness invariant (checked over random programs x all three
/// backends by analysis_accuracy_property_test): for every output,
///   |measured - exact| <= bound   with
///   bound = min(max(exact, 1 - exact), bias + kNSigma * sqrt(var)).
/// The trivial cap makes the bound *deterministically* sound — measured
/// and exact both live in [0, 1] — so the calibrated stochastic part
/// only ever tightens it.
///
/// Consumers:
///  * opt::PassManager — the multi-objective Pareto gate compares
///    plan_error before/after each rewrite against OptConfig::
///    error_budget (the chain rewrite trades accuracy for area; under a
///    tight budget it must be rolled back),
///  * sc_lint — append_accuracy_diagnostics turns the interpretation
///    into typed diagnostics (precision-loss, saturation-risk,
///    correlation-bias, insufficient-stream-length, chain-unrecoverable),
///  * min_stream_length — smallest power-of-two N whose predicted bound
///    meets a requested RMSE (the insufficient-stream-length fix hint).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "graph/error_transfer.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

namespace sc::analysis {

/// Sound accuracy claim for one program output at stream length N.
struct ErrorBound {
  graph::NodeId node = graph::kInvalidNode;
  std::string name;
  double exact = 0.0;  ///< exact (floating-point) output value
  double bias = 0.0;   ///< deterministic |E[measured] - exact| bound
  double sigma = 0.0;  ///< standard deviation bound of the N-bit mean
  double bound = 0.0;  ///< min(trivial, bias + kNSigma * sigma)
  double lo = 0.0;     ///< E[measured] interval, unipolar space
  double hi = 1.0;
};

/// Full result of one abstract interpretation.
struct AccuracyReport {
  /// Per-node abstract state, indexed by NodeId (dead nodes included).
  std::vector<graph::ErrorAbs> nodes;
  /// One bound per program output, in output order.
  std::vector<ErrorBound> outputs;
  /// Worst (largest) output bound — the optimizer's scalar error metric.
  double worst_bound = 0.0;
  std::size_t stream_length = 0;

  [[nodiscard]] std::string to_text() const;
};

/// Confidence multiplier of the stochastic half of a bound: the final
/// bound spends `bias + kNSigma * sqrt(var)` before the trivial cap.
inline constexpr double kNSigma = 2.5;

/// Runs the abstract interpreter over a planned program at
/// config.stream_length bits.  Internally runs the correlation dataflow
/// analysis to derive per-pair residuals; use plan_accuracy_with when an
/// AnalysisReport is already in hand.
AccuracyReport plan_accuracy(const graph::Program& program,
                             const graph::ProgramPlan& plan,
                             const AnalyzerConfig& config = {});

/// Same, reusing `facts` (an AnalysisReport whose pairs/facts were
/// computed for this exact program + plan + config).
AccuracyReport plan_accuracy_with(const AnalysisReport& facts,
                                  const graph::Program& program,
                                  const graph::ProgramPlan& plan,
                                  const AnalyzerConfig& config = {});

/// Just the worst output bound (the opt:: hook — the Pareto gate's
/// accuracy axis, beside plan_fragility).
double plan_error(const graph::Program& program,
                  const graph::ProgramPlan& plan,
                  const AnalyzerConfig& config = {});

/// Smallest power-of-two stream length whose predicted worst output
/// bound meets `target_rmse`, probing 64 .. 2^26.  Returns 0 when no
/// probed length gets there (deterministic bias alone exceeds the
/// target, so running longer cannot help).
std::size_t min_stream_length(const graph::Program& program,
                              const graph::ProgramPlan& plan,
                              double target_rmse,
                              const AnalyzerConfig& config = {});

/// Runs plan_accuracy_with over `report`'s own facts and appends the
/// accuracy diagnostic family (stable ids, deterministic order):
///   precision-loss              (warning) output deterministic bias
///                               beyond 0.1 — the estimate is biased, not
///                               merely noisy, so longer streams cannot
///                               recover it
///   saturation-risk             (warning) live saturating op whose
///                               operand envelope crosses the clip point
///   correlation-bias            (warning) live op absorbing >= 0.01
///                               bias from residual operand correlation
///   insufficient-stream-length  (warning) config.target_rmse > 0 and
///                               the configured N misses it; message
///                               carries min_stream_length's answer
///   chain-unrecoverable         (warning) decorrelator-chain link whose
///                               post-fault disturbance persists to
///                               stream end across >= 2 copies — flags
///                               ReCo1-style recorrelation as the hint
/// Also fills report.worst_error_bound (the to_json "error_bound"
/// field).  Called by analyze(); sc_lint gets it for free.
void append_accuracy_diagnostics(AnalysisReport& report,
                                 const graph::Program& program,
                                 const graph::ProgramPlan& plan,
                                 const AnalyzerConfig& config = {});

}  // namespace sc::analysis
