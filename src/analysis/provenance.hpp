/// \file provenance.hpp
/// Static RNG/seed provenance for planned programs.
///
/// Every random decision a backend makes derives from seeds.hpp's
/// (node, role, lane) scheme, and backend.cpp's derived_seeds() already
/// enumerates the 32-bit folds for runtime audits.  This module makes the
/// same enumeration *inspectable*: each derived seed becomes a SeedRecord
/// carrying its origin (which node, which role, which lane) and — the part
/// no runtime audit sees — its **effective generator identity**.
///
/// rng::Lfsr keeps only the low `width` bits of its seed (remapping a
/// masked zero to 1) and its output sequence is fully determined by that
/// masked state plus the output rotation.  So two derived seeds that are
/// distinct as 32-bit folds can still seed *the same generator*: with the
/// default width 8 there are only 255 reachable schedules per rotation.
/// When that happens to two input-group traces, the groups are not merely
/// correlated — they are bit-identical, and the planner's lineage analysis
/// (which reasons about group *ids*, not generator *states*) silently
/// treats them as independent.  seed_provenance() surfaces both collision
/// classes statically:
///
///   * exact collisions — identical 32-bit folds (derivation-scheme bug or
///     birthday collision; derived_seeds' regression test guards the
///     default seed, this reports any seed),
///   * masked collisions — distinct folds, same effective generator
///     (pigeonhole in the masked space; unavoidable in general, but a
///     correctness hazard the correlation analysis must model).
///
/// The analyzer (analyzer.hpp) consumes effective generator ids as the
/// atoms of its independence reasoning: two streams are independent only
/// when their *generator* sets are disjoint, not merely their group ids.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"
#include "graph/seeds.hpp"

namespace sc::analysis {

/// Identity of an LFSR output schedule: the width-masked (and 0 -> 1
/// remapped) register state the generator actually starts from, plus the
/// output rotation.  Two sources with equal GeneratorId emit identical
/// sequences; equal state under different rotations emit bit-rotations of
/// one another (distinct address schedules, still structurally related).
struct GeneratorId {
  std::uint32_t state = 1;
  unsigned rotation = 0;

  bool operator==(const GeneratorId& other) const {
    return state == other.state && rotation == other.rotation;
  }
  bool operator!=(const GeneratorId& other) const { return !(*this == other); }
  bool operator<(const GeneratorId& other) const {
    return state != other.state ? state < other.state
                                : rotation < other.rotation;
  }
};

/// The effective generator a consumer of `seed32` runs: rng::Lfsr keeps
/// the low `width` bits and remaps a masked zero to 1.
GeneratorId effective_generator(std::uint32_t seed32, unsigned width,
                                unsigned rotation = 0);

/// One derived seed with its full origin story.
struct SeedRecord {
  std::uint32_t seed32 = 0;       ///< the fold the LFSR is seeded with
  GeneratorId generator;          ///< effective identity (masked + rotation)
  graph::seeds::Role role = graph::seeds::Role::kGroupTrace;
  /// Role-dependent key: the RNG group id for kGroupTrace, the op node's
  /// seed_tag for kOpPrivate / kFixAux*.
  std::uint32_t key = 0;
  std::uint32_t lane = 0;         ///< slot index / fix operand-pair lane
  /// Program node the seed belongs to: the op node for private slots and
  /// fix RNGs, the first node of the group for traces.
  graph::NodeId node = graph::kInvalidNode;
  std::string label;              ///< human-readable origin
};

/// A pair of records (indices into SeedReport::records) that alias.
struct SeedCollision {
  std::size_t first = 0;
  std::size_t second = 0;
  bool exact = false;  ///< identical 32-bit folds (else masked-space only)
};

/// Every derived seed of one (program, plan, config), in backend
/// enumeration order, plus all pairwise collisions.
struct SeedReport {
  std::vector<SeedRecord> records;
  std::vector<SeedCollision> collisions;

  /// Records whose effective generator equals `id`.
  [[nodiscard]] std::vector<const SeedRecord*> sharing(const GeneratorId& id) const;
};

/// Enumerates the derived seeds of a run exactly as the backends would
/// draw them (mirrors backend.cpp's derived_seeds(), which the regression
/// test cross-checks), and detects exact + masked collisions.
SeedReport seed_provenance(const graph::Program& program,
                           const graph::ProgramPlan& plan,
                           const graph::ExecConfig& config);

/// Collision detection on a bare record list (for synthetic corpora).
std::vector<SeedCollision> find_collisions(
    const std::vector<SeedRecord>& records);

}  // namespace sc::analysis
