#include "analysis/provenance.hpp"

#include <map>
#include <string>

namespace sc::analysis {

using graph::NodeId;
using graph::OperatorDef;
using graph::PairFix;
using graph::FixKind;
using graph::ProgramNode;
using graph::seeds::Role;
using graph::seeds::derive_seed32;

namespace {

/// Stable per-fix seed lane — must match backend.cpp's fix_lane (the
/// operand-slot pair, invariant under plan rewrites).
std::uint32_t fix_lane(const PairFix& fix) {
  return fix.operand_a * graph::kMaxArity + fix.operand_b;
}

SeedRecord make_record(std::uint32_t seed32, unsigned width,
                       unsigned rotation, Role role, std::uint32_t key,
                       std::uint32_t lane, NodeId node, std::string label) {
  SeedRecord record;
  record.seed32 = seed32;
  record.generator = effective_generator(seed32, width, rotation);
  record.role = role;
  record.key = key;
  record.lane = lane;
  record.node = node;
  record.label = std::move(label);
  return record;
}

}  // namespace

GeneratorId effective_generator(std::uint32_t seed32, unsigned width,
                                unsigned rotation) {
  const std::uint32_t mask =
      width >= 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1u);
  std::uint32_t state = seed32 & mask;
  if (state == 0) state = 1;
  return GeneratorId{state, rotation};
}

std::vector<const SeedRecord*> SeedReport::sharing(
    const GeneratorId& id) const {
  std::vector<const SeedRecord*> out;
  for (const SeedRecord& record : records) {
    if (record.generator == id) out.push_back(&record);
  }
  return out;
}

std::vector<SeedCollision> find_collisions(
    const std::vector<SeedRecord>& records) {
  // Group by effective generator: exact collisions are a subset of masked
  // ones (equal folds imply equal masked states at equal rotation), and
  // rotation differences keep schedules distinct, so grouping by
  // GeneratorId finds every aliasing pair in O(n log n).
  std::vector<SeedCollision> out;
  std::map<GeneratorId, std::vector<std::size_t>> by_generator;
  for (std::size_t i = 0; i < records.size(); ++i) {
    by_generator[records[i].generator].push_back(i);
  }
  for (const auto& [generator, members] : by_generator) {
    (void)generator;
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        SeedCollision collision;
        collision.first = members[i];
        collision.second = members[j];
        collision.exact =
            records[members[i]].seed32 == records[members[j]].seed32;
        out.push_back(collision);
      }
    }
  }
  return out;
}

SeedReport seed_provenance(const graph::Program& program,
                           const graph::ProgramPlan& plan,
                           const graph::ExecConfig& config) {
  SeedReport report;
  std::map<unsigned, bool> groups;
  for (NodeId id = 0; id < program.node_count(); ++id) {
    const ProgramNode& node = program.node(id);
    if (node.kind != ProgramNode::Kind::kOp) {
      if (!groups.emplace(node.rng_group, true).second) continue;
      const std::uint32_t seed =
          derive_seed32(config.seed, node.rng_group, Role::kGroupTrace);
      report.records.push_back(make_record(
          seed, config.width, /*rotation=*/0, Role::kGroupTrace,
          node.rng_group, 0, id,
          "trace of RNG group " + std::to_string(node.rng_group)));
      continue;
    }
    const OperatorDef& def = program.def_of(id);
    const std::uint32_t tag = node.seed_tag;
    for (unsigned slot = 0; slot < def.rng_slots; ++slot) {
      const std::uint32_t seed =
          derive_seed32(config.seed, tag, Role::kOpPrivate, slot);
      report.records.push_back(make_record(
          seed, config.width, /*rotation=*/0, Role::kOpPrivate, tag, slot, id,
          def.name + " '" + node.name + "' private slot " +
              std::to_string(slot)));
    }
    for (const PairFix* fix : plan.fixes_for(id)) {
      const std::uint32_t lane = fix_lane(*fix);
      const std::string pair_label =
          " '" + node.name + "' pair (" + std::to_string(fix->operand_a) +
          ", " + std::to_string(fix->operand_b) + ")";
      switch (fix->fix) {
        case FixKind::kDecorrelator:
        case FixKind::kRegenerateDistinct:
          report.records.push_back(make_record(
              derive_seed32(config.seed, tag, Role::kFixAuxA, lane),
              config.width, /*rotation=*/0, Role::kFixAuxA, tag, lane, id,
              to_string(fix->fix) + pair_label + " aux A"));
          // The decorrelator's second buffer keeps its output rotation (3)
          // precisely so a masked collision with aux A still yields a
          // distinct address schedule — model the rotation, or the pair
          // would self-report as colliding.
          report.records.push_back(make_record(
              derive_seed32(config.seed, tag, Role::kFixAuxB, lane),
              config.width,
              fix->fix == FixKind::kDecorrelator ? 3u : 0u, Role::kFixAuxB,
              tag, lane, id, to_string(fix->fix) + pair_label + " aux B"));
          break;
        case FixKind::kDecorrelatorChain:
        case FixKind::kRegenerateShared:
        case FixKind::kRegenerateComplementary:
          report.records.push_back(make_record(
              derive_seed32(config.seed, tag, Role::kFixAuxA, lane),
              config.width, /*rotation=*/0, Role::kFixAuxA, tag, lane, id,
              to_string(fix->fix) + pair_label + " aux"));
          break;
        default:
          break;  // synchronizer / desynchronizer draw no RNG
      }
    }
  }
  report.collisions = find_collisions(report.records);
  return report;
}

}  // namespace sc::analysis
