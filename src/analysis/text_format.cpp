#include "analysis/text_format.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sc::analysis {

using graph::GraphBuilder;
using graph::ProgramNode;
using graph::Value;

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("sct parse error at line " +
                              std::to_string(line) + ": " + what);
}

double parse_value(const std::string& token, std::size_t line) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    if (consumed != token.size()) fail(line, "malformed number '" + token + "'");
    return value;
  } catch (const std::invalid_argument&) {
    fail(line, "malformed number '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range '" + token + "'");
  }
}

}  // namespace

graph::Program parse_program(const std::string& text,
                             const graph::OperatorRegistry& registry) {
  GraphBuilder builder(registry);
  std::map<std::string, Value> values;
  std::vector<std::pair<std::string, std::size_t>> outputs;

  std::istringstream stream(text);
  std::string raw_line;
  std::size_t line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const std::size_t hash = raw_line.find('#');
    if (hash != std::string::npos) raw_line.erase(hash);
    std::istringstream line(raw_line);
    std::string keyword;
    if (!(line >> keyword)) continue;

    if (keyword == "input") {
      std::string name, value_token, group_token;
      if (!(line >> name >> value_token)) {
        fail(line_no, "input needs: input <name> <value> [group=<n>]");
      }
      unsigned group = 0;
      if (line >> group_token) {
        if (group_token.rfind("group=", 0) != 0) {
          fail(line_no, "expected group=<n>, got '" + group_token + "'");
        }
        try {
          group = static_cast<unsigned>(
              std::stoul(group_token.substr(6)));
        } catch (const std::exception&) {
          fail(line_no, "malformed group id '" + group_token + "'");
        }
      }
      if (values.count(name)) fail(line_no, "duplicate name '" + name + "'");
      try {
        values[name] = builder.input(name, parse_value(value_token, line_no),
                                     group);
      } catch (const std::invalid_argument& error) {
        fail(line_no, error.what());
      }
    } else if (keyword == "const") {
      std::string name, value_token;
      if (!(line >> name >> value_token)) {
        fail(line_no, "const needs: const <name> <value>");
      }
      if (values.count(name)) fail(line_no, "duplicate name '" + name + "'");
      try {
        values[name] =
            builder.constant(parse_value(value_token, line_no), name);
      } catch (const std::invalid_argument& error) {
        fail(line_no, error.what());
      }
    } else if (keyword == "op") {
      std::string name, op_name;
      if (!(line >> name >> op_name)) {
        fail(line_no, "op needs: op <name> <operator> <operand>...");
      }
      std::vector<Value> operands;
      std::string operand;
      while (line >> operand) {
        const auto it = values.find(operand);
        if (it == values.end()) {
          fail(line_no, "undefined operand '" + operand + "'");
        }
        operands.push_back(it->second);
      }
      if (values.count(name)) fail(line_no, "duplicate name '" + name + "'");
      const graph::OperatorDef* def = registry.find(op_name);
      if (def == nullptr) {
        fail(line_no, "unknown operator '" + op_name + "'");
      }
      if (operands.size() != def->arity) {
        fail(line_no, "'" + op_name + "' takes " +
                          std::to_string(def->arity) + " operands, got " +
                          std::to_string(operands.size()));
      }
      // raw_node instead of op(): keeps the user's chosen node name (op()
      // would name the node after the operator).
      ProgramNode node;
      node.kind = ProgramNode::Kind::kOp;
      node.name = name;
      node.op = registry.id_of(op_name);
      for (const Value& operand_value : operands) {
        node.operands.push_back(operand_value.id);
      }
      try {
        values[name] = builder.raw_node(std::move(node));
      } catch (const std::invalid_argument& error) {
        fail(line_no, error.what());
      }
    } else if (keyword == "output") {
      std::string name;
      if (!(line >> name)) fail(line_no, "output needs: output <name>");
      outputs.emplace_back(name, line_no);
    } else {
      fail(line_no, "unknown statement '" + keyword + "'");
    }
  }

  if (outputs.empty()) {
    throw std::invalid_argument(
        "sct parse error: program declares no output");
  }
  for (const auto& [name, line] : outputs) {
    const auto it = values.find(name);
    if (it == values.end()) fail(line, "undefined output '" + name + "'");
    builder.output(it->second);
  }
  return builder.build();
}

std::string serialize_program(const graph::Program& program) {
  std::ostringstream out;
  std::vector<std::string> names(program.node_count());
  for (graph::NodeId id = 0; id < program.node_count(); ++id) {
    const ProgramNode& node = program.node(id);
    names[id] = node.name.empty() ? "v" + std::to_string(id) : node.name;
    switch (node.kind) {
      case ProgramNode::Kind::kInput:
        out << "input " << names[id] << " " << node.value << " group="
            << node.rng_group << "\n";
        break;
      case ProgramNode::Kind::kConstant:
        out << "const " << names[id] << " " << node.value << "\n";
        break;
      case ProgramNode::Kind::kOp: {
        out << "op " << names[id] << " " << program.def_of(id).name;
        for (const graph::NodeId operand : node.operands) {
          out << " " << names[operand];
        }
        out << "\n";
        break;
      }
    }
  }
  for (const graph::NodeId id : program.outputs()) {
    out << "output " << names[id] << "\n";
  }
  return out.str();
}

}  // namespace sc::analysis
