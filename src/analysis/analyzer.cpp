#include "analysis/analyzer.hpp"

#include "analysis/error_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "bitstream/encoding.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace sc::analysis {

using graph::FixKind;
using graph::NodeId;
using graph::OperatorDef;
using graph::PairFix;
using graph::ProgramNode;
using graph::Requirement;
using graph::seeds::Role;
using graph::seeds::derive_seed32;

std::string to_string(SccClass value) {
  switch (value) {
    case SccClass::kCorrelated:
      return "correlated";
    case SccClass::kIndependent:
      return "independent";
    case SccClass::kAnticorrelated:
      return "anticorrelated";
    case SccClass::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

bool class_satisfies(Requirement requirement, SccClass value) {
  switch (requirement) {
    case Requirement::kAgnostic:
      return true;
    case Requirement::kUncorrelated:
      return value == SccClass::kIndependent;
    case Requirement::kPositive:
      return value == SccClass::kCorrelated;
    case Requirement::kNegative:
      return value == SccClass::kAnticorrelated;
  }
  return false;
}

AnalyzerConfig AnalyzerConfig::from(const graph::ExecConfig& config) {
  AnalyzerConfig out;
  out.stream_length = config.stream_length;
  out.width = config.width;
  out.seed = config.seed;
  out.sync_depth = config.sync_depth;
  out.shuffle_depth = config.shuffle_depth;
  out.telemetry = config.telemetry;
  return out;
}

namespace {

/// Must match backend.cpp's fix_lane (stable operand-slot pair lanes).
std::uint32_t fix_lane(const PairFix& fix) {
  return fix.operand_a * graph::kMaxArity + fix.operand_b;
}

void insert_sorted(std::vector<GeneratorId>& set, const GeneratorId& id) {
  const auto it = std::lower_bound(set.begin(), set.end(), id);
  if (it == set.end() || *it != id) set.insert(it, id);
}

bool disjoint(const std::vector<GeneratorId>& a,
              const std::vector<GeneratorId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return false;
    }
  }
  return true;
}

/// Abstract final state of one operand slot after the node's fixes ran.
struct SlotAbs {
  enum class Last {
    kRaw,          ///< untouched operand stream
    kShuffled,     ///< last transform re-shuffled / re-encoded it with an
                   ///< independent schedule (decorrelates vs everything)
    kPaired,       ///< last transform pairs it with its partner slot
  };
  Last last = Last::kRaw;
  FixKind paired_kind = FixKind::kNone;
  std::size_t paired_fix = 0;  ///< identity of the pairing fix application
};

/// Applies one fix to the slot states (the slot-wise semantics of the
/// backends' fix application loop).
void apply_fix_abstract(std::vector<SlotAbs>& slots, const PairFix& fix,
                        std::size_t fix_identity) {
  SlotAbs& a = slots[fix.operand_a];
  SlotAbs& b = slots[fix.operand_b];
  switch (fix.fix) {
    case FixKind::kDecorrelator:
    case FixKind::kRegenerateDistinct:
      // Both slots leave on fresh independent schedules.
      a.last = SlotAbs::Last::kShuffled;
      b.last = SlotAbs::Last::kShuffled;
      break;
    case FixKind::kDecorrelatorChain:
      // Chain link: slot b becomes shuffle(slot a); a passes through.
      b.last = SlotAbs::Last::kShuffled;
      break;
    case FixKind::kSynchronizer:
    case FixKind::kDesynchronizer:
    case FixKind::kRegenerateShared:
    case FixKind::kRegenerateComplementary:
      a.last = SlotAbs::Last::kPaired;
      a.paired_kind = fix.fix;
      a.paired_fix = fix_identity;
      b.last = SlotAbs::Last::kPaired;
      b.paired_kind = fix.fix;
      b.paired_fix = fix_identity;
      break;
    case FixKind::kNone:
      break;
  }
}

/// Class of a slot pair given the final slot states and the raw-operand
/// class.  A slot on a fresh independent schedule is uncorrelated with
/// every other stream (the plan_covers chain rule); paired slots carry
/// the regime their shared circuit drives; anything half-transformed is
/// unknown.
SccClass slot_pair_class(const SlotAbs& a, const SlotAbs& b,
                         SccClass raw_class) {
  if (a.last == SlotAbs::Last::kShuffled || b.last == SlotAbs::Last::kShuffled) {
    return SccClass::kIndependent;
  }
  if (a.last == SlotAbs::Last::kPaired && b.last == SlotAbs::Last::kPaired &&
      a.paired_fix == b.paired_fix) {
    switch (a.paired_kind) {
      case FixKind::kSynchronizer:
      case FixKind::kRegenerateShared:
        return SccClass::kCorrelated;
      case FixKind::kDesynchronizer:
      case FixKind::kRegenerateComplementary:
        return SccClass::kAnticorrelated;
      default:
        return SccClass::kUnknown;
    }
  }
  if (a.last == SlotAbs::Last::kRaw && b.last == SlotAbs::Last::kRaw) {
    return raw_class;
  }
  return SccClass::kUnknown;
}

double sync_state_bits(unsigned sync_depth) {
  // Up/down counter over [-depth, +depth].
  return std::ceil(std::log2(2.0 * static_cast<double>(sync_depth) + 1.0));
}

// ------------------------------------------------------------ JSON bits

void json_escape(std::ostringstream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::size_t AnalysisReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

SccClass AnalysisReport::node_class(NodeId a, NodeId b) const {
  if (a == b) return SccClass::kCorrelated;
  const NodeFacts& fa = facts[a];
  const NodeFacts& fb = facts[b];
  // Structurally identical computations produce bit-identical streams.
  if (fa.value_number == fb.value_number) return SccClass::kCorrelated;
  // Threshold encodings of one trace: exact +1 (same comparison
  // direction) or exact -1 (opposite).
  if (fa.has_tgen && fb.has_tgen && fa.tgen == fb.tgen) {
    return fa.tgen_inverted == fb.tgen_inverted ? SccClass::kCorrelated
                                                : SccClass::kAnticorrelated;
  }
  // Disjoint randomness cones — in *effective generator* space, so a
  // width-masked seed collision correctly defeats the claim.
  if (disjoint(fa.provenance, fb.provenance)) return SccClass::kIndependent;
  return SccClass::kUnknown;
}

std::string AnalysisReport::to_text() const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << to_string(d.severity) << "[" << d.id << "]";
    if (d.node != graph::kInvalidNode) {
      out << " node #" << d.node;
      if (!d.name.empty()) out << " '" << d.name << "'";
    }
    out << ": " << d.message << "\n";
  }
  out << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
      << " warning(s), " << count(Severity::kNote) << " note(s); "
      << pairs.size() << " pair(s) checked; fragility " << fragility
      << "; error bound " << worst_error_bound << "\n";
  return out.str();
}

std::string AnalysisReport::to_json(const std::string& source) const {
  std::ostringstream out;
  out << "{\n  \"source\": \"";
  json_escape(out, source);
  out << "\",\n  \"summary\": {\"errors\": " << count(Severity::kError)
      << ", \"warnings\": " << count(Severity::kWarning)
      << ", \"notes\": " << count(Severity::kNote) << "},\n"
      << "  \"fragility\": " << fragility << ",\n  \"error_bound\": "
      << worst_error_bound << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << (i == 0 ? "" : ",") << "\n    {\"id\": \"";
    json_escape(out, d.id);
    out << "\", \"severity\": \"" << to_string(d.severity) << "\", \"node\": "
        << (d.node == graph::kInvalidNode
                ? -1
                : static_cast<std::int64_t>(d.node))
        << ", \"name\": \"";
    json_escape(out, d.name);
    out << "\", \"message\": \"";
    json_escape(out, d.message);
    out << "\"}";
  }
  out << (diagnostics.empty() ? "" : "\n  ") << "],\n  \"pairs\": [";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const PairPrediction& p = pairs[i];
    out << (i == 0 ? "" : ",") << "\n    {\"op_node\": " << p.op_node
        << ", \"operand_a\": " << p.operand_a
        << ", \"operand_b\": " << p.operand_b << ", \"requirement\": \""
        << graph::to_string(p.requirement) << "\", \"fix\": \""
        << graph::to_string(p.fix) << "\", \"operands\": \""
        << to_string(p.operands) << "\", \"at_gate\": \""
        << to_string(p.at_gate) << "\", \"satisfied\": "
        << (p.satisfied ? "true" : "false") << "}";
  }
  out << (pairs.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

namespace {

/// Shared worker behind analyze() / plan_fragility().
class Analyzer {
 public:
  Analyzer(const graph::Program& program, const graph::ProgramPlan& plan,
           const AnalyzerConfig& config)
      : program_(program), plan_(plan), config_(config) {}

  AnalysisReport run(bool diagnostics_wanted) {
    compute_facts();
    compute_liveness();
    compute_pairs();
    compute_fragility();
    if (diagnostics_wanted) {
      report_.seeds = seed_provenance(program_, plan_, exec_config());
      diagnose_seed_collisions();
      diagnose_pairs();
      diagnose_chains();
      diagnose_dead();
      diagnose_constants();
    }
    return std::move(report_);
  }

 private:
  [[nodiscard]] graph::ExecConfig exec_config() const {
    graph::ExecConfig exec;
    exec.stream_length = config_.stream_length;
    exec.width = config_.width;
    exec.seed = config_.seed;
    exec.sync_depth = config_.sync_depth;
    exec.shuffle_depth = config_.shuffle_depth;
    return exec;
  }

  [[nodiscard]] GeneratorId group_generator(unsigned group) const {
    return effective_generator(
        derive_seed32(config_.seed, group, Role::kGroupTrace), config_.width);
  }

  std::uint32_t intern(const std::string& key) {
    const auto [it, inserted] =
        value_numbers_.emplace(key, static_cast<std::uint32_t>(
                                        value_numbers_.size()));
    (void)inserted;
    return it->second;
  }

  // ------------------------------------------------------------- facts
  void compute_facts() {
    const std::uint64_t natural = std::uint64_t{1} << config_.width;
    report_.facts.resize(program_.node_count());
    for (NodeId id = 0; id < program_.node_count(); ++id) {
      const ProgramNode& node = program_.node(id);
      AnalysisReport::NodeFacts& facts = report_.facts[id];
      if (node.kind != ProgramNode::Kind::kOp) {
        const GeneratorId gen = group_generator(node.rng_group);
        insert_sorted(facts.provenance, gen);
        facts.has_tgen = true;
        facts.tgen = gen;
        facts.tgen_inverted = false;
        facts.constant_only = node.kind == ProgramNode::Kind::kConstant;
        // Streams are threshold encodings [trace < level]; equal effective
        // generator + equal level means the identical stream, whatever the
        // group ids say.
        facts.value_number = intern(
            "s|" + std::to_string(gen.state) + "|" +
            std::to_string(gen.rotation) + "|" +
            std::to_string(unipolar_level64(node.value, natural)));
        continue;
      }

      const OperatorDef& def = program_.def_of(id);
      const std::vector<const PairFix*> fixes = plan_.fixes_for(id);
      bool has_active_fix = false;
      bool fix_rng = false;
      std::string fix_sig;
      for (const PairFix* fix : fixes) {
        if (fix->fix == FixKind::kNone) continue;
        has_active_fix = true;
        if (graph::fix_draws_rng(fix->fix)) fix_rng = true;
        fix_sig += std::to_string(static_cast<int>(fix->fix)) + ":" +
                   std::to_string(fix->operand_a) + ":" +
                   std::to_string(fix->operand_b) + ";";
        // Fix aux RNGs join the node's randomness cone.
        const std::uint32_t lane = fix_lane(*fix);
        switch (fix->fix) {
          case FixKind::kDecorrelator:
            insert_sorted(facts.provenance,
                          effective_generator(
                              derive_seed32(config_.seed, node.seed_tag,
                                            Role::kFixAuxA, lane),
                              config_.width));
            insert_sorted(facts.provenance,
                          effective_generator(
                              derive_seed32(config_.seed, node.seed_tag,
                                            Role::kFixAuxB, lane),
                              config_.width, /*rotation=*/3));
            break;
          case FixKind::kRegenerateDistinct:
            insert_sorted(facts.provenance,
                          effective_generator(
                              derive_seed32(config_.seed, node.seed_tag,
                                            Role::kFixAuxA, lane),
                              config_.width));
            insert_sorted(facts.provenance,
                          effective_generator(
                              derive_seed32(config_.seed, node.seed_tag,
                                            Role::kFixAuxB, lane),
                              config_.width));
            break;
          case FixKind::kDecorrelatorChain:
          case FixKind::kRegenerateShared:
          case FixKind::kRegenerateComplementary:
            insert_sorted(facts.provenance,
                          effective_generator(
                              derive_seed32(config_.seed, node.seed_tag,
                                            Role::kFixAuxA, lane),
                              config_.width));
            break;
          default:
            break;
        }
      }

      facts.constant_only = !node.operands.empty();
      for (const NodeId operand : node.operands) {
        const AnalysisReport::NodeFacts& of = report_.facts[operand];
        for (const GeneratorId& gen : of.provenance) {
          insert_sorted(facts.provenance, gen);
        }
        if (!of.constant_only) facts.constant_only = false;
      }
      for (unsigned slot = 0; slot < def.rng_slots; ++slot) {
        insert_sorted(facts.provenance,
                      effective_generator(
                          derive_seed32(config_.seed, node.seed_tag,
                                        Role::kOpPrivate, slot),
                          config_.width));
      }

      // Threshold-generator propagation: monotone gates over threshold
      // encodings of one trace stay threshold encodings of it — but any
      // active fix or private RNG breaks the shape.
      if (!has_active_fix && def.rng_slots == 0 &&
          def.correlation_effect != graph::CorrelationEffect::kDestroying &&
          !node.operands.empty()) {
        bool uniform = true;
        const AnalysisReport::NodeFacts& first =
            report_.facts[node.operands.front()];
        if (!first.has_tgen) uniform = false;
        for (const NodeId operand : node.operands) {
          const AnalysisReport::NodeFacts& of = report_.facts[operand];
          if (!of.has_tgen || !first.has_tgen || of.tgen != first.tgen ||
              of.tgen_inverted != first.tgen_inverted) {
            uniform = false;
            break;
          }
        }
        if (uniform) {
          facts.has_tgen = true;
          facts.tgen = first.tgen;
          facts.tgen_inverted =
              def.correlation_effect == graph::CorrelationEffect::kInverting
                  ? !first.tgen_inverted
                  : first.tgen_inverted;
        }
      }

      // Value number: the CSE criterion — (operator, operand identity,
      // fix shapes, and the seed tag whenever private/fix RNG is drawn).
      std::string key = "o|" + std::to_string(node.op);
      for (const NodeId operand : node.operands) {
        key += "|" + std::to_string(report_.facts[operand].value_number);
      }
      key += "|f:" + fix_sig;
      if (def.rng_slots > 0 || fix_rng) {
        key += "|t:" + std::to_string(node.seed_tag);
      }
      facts.value_number = intern(key);
    }
  }

  void compute_liveness() {
    std::vector<NodeId> stack(program_.outputs().begin(),
                              program_.outputs().end());
    for (const NodeId id : stack) report_.facts[id].live = true;
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      for (const NodeId operand : program_.node(id).operands) {
        if (!report_.facts[operand].live) {
          report_.facts[operand].live = true;
          stack.push_back(operand);
        }
      }
    }
  }

  // ------------------------------------------------------------- pairs
  /// Final slot states of one node's fix list, optionally skipping one
  /// fix (the counterfactual used for redundancy proofs).
  std::vector<SlotAbs> simulate(const ProgramNode& node,
                                const std::vector<const PairFix*>& fixes,
                                const PairFix* skip) const {
    std::vector<SlotAbs> slots(node.operands.size());
    for (std::size_t position = 0; position < fixes.size(); ++position) {
      if (fixes[position] == skip) continue;
      apply_fix_abstract(slots, *fixes[position], position);
    }
    return slots;
  }

  [[nodiscard]] SccClass pair_class(const ProgramNode& node,
                      const std::vector<SlotAbs>& slots, unsigned a,
                      unsigned b) const {
    return slot_pair_class(
        slots[a], slots[b],
        report_.node_class(node.operands[a], node.operands[b]));
  }

  void compute_pairs() {
    // Map plan fixes by (node, pair) for the requirement sweep, keeping
    // plan indices for redundancy reporting.
    std::map<std::tuple<NodeId, unsigned, unsigned>, std::size_t> fix_index;
    for (std::size_t i = 0; i < plan_.fixes.size(); ++i) {
      const PairFix& fix = plan_.fixes[i];
      fix_index[{fix.op_node, fix.operand_a, fix.operand_b}] = i;
    }

    for (const NodeId op_node : program_.op_nodes()) {
      const ProgramNode& node = program_.node(op_node);
      const OperatorDef& def = program_.def_of(op_node);
      const std::vector<const PairFix*> fixes = plan_.fixes_for(op_node);
      const std::vector<SlotAbs> final_slots = simulate(node, fixes, nullptr);

      for (unsigned a = 0; a < node.operands.size(); ++a) {
        for (unsigned b = a + 1; b < node.operands.size(); ++b) {
          const Requirement requirement = def.requirement_between(a, b);
          if (requirement == Requirement::kAgnostic) continue;
          PairPrediction prediction;
          prediction.op_node = op_node;
          prediction.operand_a = a;
          prediction.operand_b = b;
          prediction.requirement = requirement;
          const auto it = fix_index.find({op_node, a, b});
          if (it != fix_index.end()) {
            prediction.fix = plan_.fixes[it->second].fix;
          }
          prediction.operands =
              report_.node_class(node.operands[a], node.operands[b]);
          prediction.at_gate = pair_class(node, final_slots, a, b);
          prediction.satisfied =
              class_satisfies(requirement, prediction.at_gate);
          report_.pairs.push_back(prediction);
        }
      }

      // Counterfactual redundancy: a fix is redundant when removing just
      // it leaves its own pair AND every pair satisfied-with-it still
      // satisfied.  (Chain links survive this test: dropping link (1,2)
      // of a 3-chain un-shuffles slot 2 and breaks pair (0,2).)
      for (const PairFix* candidate : fixes) {
        if (candidate->fix == FixKind::kNone) continue;
        const std::vector<SlotAbs> without =
            simulate(node, fixes, candidate);
        bool redundant = true;
        SccClass own_class = SccClass::kUnknown;
        for (unsigned a = 0; a < node.operands.size() && redundant; ++a) {
          for (unsigned b = a + 1; b < node.operands.size(); ++b) {
            const Requirement requirement = def.requirement_between(a, b);
            if (requirement == Requirement::kAgnostic) continue;
            const SccClass with_class = pair_class(node, final_slots, a, b);
            const SccClass without_class = pair_class(node, without, a, b);
            if (a == candidate->operand_a && b == candidate->operand_b) {
              own_class = without_class;
            }
            if (class_satisfies(requirement, with_class) &&
                !class_satisfies(requirement, without_class)) {
              redundant = false;
              break;
            }
          }
        }
        if (!redundant || !class_satisfies(def.requirement_between(
                                               candidate->operand_a,
                                               candidate->operand_b),
                                           own_class)) {
          continue;
        }
        RedundantFix finding;
        finding.fix_index = static_cast<std::size_t>(
            candidate - plan_.fixes.data());
        finding.op_node = op_node;
        finding.operand_a = candidate->operand_a;
        finding.operand_b = candidate->operand_b;
        finding.without_fix = own_class;
        report_.redundant_fixes.push_back(finding);
      }
    }
  }

  // --------------------------------------------------------- fragility
  void compute_fragility() {
    // Sharers of each representative fix (correction sharing fans one
    // physical circuit to every mirror, so one upset reaches them all).
    std::map<std::size_t, double> sharers;
    for (const PairFix& fix : plan_.fixes) {
      if (fix.shared_with >= 0) {
        sharers[static_cast<std::size_t>(fix.shared_with)] += 1.0;
      }
    }

    // Downstream depth of chain links: link t of an m-link chain poisons
    // its own target slot plus every later link's (shuffles compose).
    std::map<std::size_t, double> chain_blast;
    for (const NodeId op_node : program_.op_nodes()) {
      std::vector<std::size_t> chain;  // plan indices, in plan order
      for (std::size_t i = 0; i < plan_.fixes.size(); ++i) {
        if (plan_.fixes[i].op_node == op_node &&
            plan_.fixes[i].fix == FixKind::kDecorrelatorChain) {
          chain.push_back(i);
        }
      }
      std::map<unsigned, double> depth_from_slot;
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const PairFix& link = plan_.fixes[*it];
        const auto next = depth_from_slot.find(link.operand_b);
        const double depth =
            1.0 + (next != depth_from_slot.end() ? next->second : 0.0);
        chain_blast[*it] = depth;
        depth_from_slot[link.operand_a] = depth;
      }
    }

    for (std::size_t i = 0; i < plan_.fixes.size(); ++i) {
      const PairFix& fix = plan_.fixes[i];
      if (fix.fix == FixKind::kNone) continue;
      if (fix.shared_with >= 0) continue;  // mirrors share the rep's state
      FixFragility entry;
      entry.fix_index = i;
      entry.op_node = fix.op_node;
      entry.kind = fix.fix;
      const auto horizon = static_cast<double>(config_.stream_length);
      switch (fix.fix) {
        case FixKind::kSynchronizer:
        case FixKind::kDesynchronizer:
          // Small counter, recovers in O(depth) cycles (BENCH_fault: 2-5).
          entry.state_bits = sync_state_bits(config_.sync_depth);
          entry.persistence = 2.0 * config_.sync_depth + 1.0;
          entry.blast = 1.0 + sharers[i];
          break;
        case FixKind::kDecorrelator:
          // Two shuffle buffers; a corrupted buffer bit never flushes.
          entry.state_bits = 2.0 * static_cast<double>(config_.shuffle_depth);
          entry.persistence = horizon;
          entry.blast = 1.0;
          break;
        case FixKind::kDecorrelatorChain:
          entry.state_bits = static_cast<double>(config_.shuffle_depth);
          entry.persistence = horizon;
          entry.blast = chain_blast.count(i) ? chain_blast[i] : 1.0;
          break;
        case FixKind::kRegenerateShared:
        case FixKind::kRegenerateComplementary:
          entry.state_bits = static_cast<double>(config_.width);
          entry.persistence = horizon;
          entry.blast = 1.0;
          break;
        case FixKind::kRegenerateDistinct:
          entry.state_bits = 2.0 * static_cast<double>(config_.width);
          entry.persistence = horizon;
          entry.blast = 1.0;
          break;
        case FixKind::kNone:
          break;
      }
      entry.score = entry.state_bits * entry.blast * entry.persistence;
      report_.fragility += entry.score;
      report_.fix_fragility.push_back(entry);
    }
  }

  // ------------------------------------------------------- diagnostics
  void emit(std::string id, Severity severity, NodeId node,
            std::string message) {
    Diagnostic d;
    d.id = std::move(id);
    d.severity = severity;
    d.node = node;
    if (node != graph::kInvalidNode) d.name = program_.node(node).name;
    d.message = std::move(message);
    report_.diagnostics.push_back(std::move(d));
  }

  void diagnose_seed_collisions() {
    for (const SeedCollision& collision : report_.seeds.collisions) {
      const SeedRecord& a = report_.seeds.records[collision.first];
      const SeedRecord& b = report_.seeds.records[collision.second];
      const bool both_traces = a.role == Role::kGroupTrace &&
                               b.role == Role::kGroupTrace;
      // Identical generators are an error when they make two schedules
      // the planner relies on being distinct literally the same machine:
      // any exact fold collision, and masked aliasing between two group
      // traces (the groups' streams become bit-identical while lineage
      // analysis still calls them independent).
      const Severity severity = collision.exact || both_traces
                                    ? Severity::kError
                                    : Severity::kWarning;
      std::ostringstream message;
      message << (collision.exact ? "derived seeds collide exactly"
                                  : "derived seeds alias after width-" +
                                        std::to_string(config_.width) +
                                        " masking")
              << ": " << a.label << " and " << b.label
              << " run one LFSR schedule (state 0x" << std::hex
              << a.generator.state << std::dec << ")";
      if (both_traces && !collision.exact) {
        message << "; the groups' traces are bit-identical but the planner "
                   "treats them as independent";
      }
      emit("seed-collision", severity, b.node, message.str());
    }
  }

  void diagnose_pairs() {
    std::map<NodeId, bool> recorded;
    for (const NodeId node : plan_.violations) recorded[node] = true;
    for (const PairPrediction& pair : report_.pairs) {
      if (pair.satisfied) continue;
      std::ostringstream message;
      message << "operand pair (" << pair.operand_a << ", " << pair.operand_b
              << ") of " << program_.def_of(pair.op_node).name << " requires "
              << graph::to_string(pair.requirement) << " streams but gets "
              << to_string(pair.at_gate) << " ones";
      if (recorded.count(pair.op_node)) {
        message << " (recorded as a planner violation — no fix inserted "
                   "under this strategy)";
      } else if (pair.fix == FixKind::kNone) {
        message << " (the planner believes this pair is satisfied and "
                   "inserted nothing)";
      } else {
        message << " despite a planned " << graph::to_string(pair.fix);
      }
      emit("requirement-violation", Severity::kError, pair.op_node,
           message.str());
    }

    for (const RedundantFix& finding : report_.redundant_fixes) {
      const PairFix& fix = plan_.fixes[finding.fix_index];
      std::ostringstream message;
      message << graph::to_string(fix.fix) << " on operand pair ("
              << finding.operand_a << ", " << finding.operand_b
              << ") is redundant: without it the pair is already "
              << to_string(finding.without_fix)
              << " and every other pair of the op stays satisfied";
      if (fix.shared_with >= 0) {
        message << " (circuit is shared, so it charges no extra area)";
      }
      emit("redundant-fix", Severity::kWarning, finding.op_node,
           message.str());
    }
  }

  void diagnose_chains() {
    // A chain of m links yields fragility entries with blast m, m-1, ...,
    // 1; one warning per op node for its deepest chain (blast >= 2 means a
    // single upset reaches at least two downstream copies).
    std::map<NodeId, double> per_node;
    for (const FixFragility& entry : report_.fix_fragility) {
      if (entry.kind != FixKind::kDecorrelatorChain) continue;
      if (entry.blast < 2.0) continue;
      per_node[entry.op_node] = std::max(per_node[entry.op_node], entry.blast);
    }
    for (const auto& [node, blast] : per_node) {
      std::ostringstream message;
      message << "decorrelator chain shares upstream shuffle state across "
              << static_cast<std::size_t>(blast)
              << " downstream copies: one upset in the first link poisons "
                 "every later copy and persists to stream end "
                 "(fault::sweep recovery-depth ground truth); consider the "
                 "pairwise form where resilience outranks area";
      emit("chain-reconvergence", Severity::kWarning, node, message.str());
    }
  }

  void diagnose_dead() {
    std::map<unsigned, bool> group_live;
    for (NodeId id = 0; id < program_.node_count(); ++id) {
      const ProgramNode& node = program_.node(id);
      if (node.kind != ProgramNode::Kind::kOp) {
        group_live[node.rng_group] =
            group_live[node.rng_group] || report_.facts[id].live;
      }
      if (report_.facts[id].live) continue;
      emit("dead-value", Severity::kNote, id,
           "value is unreachable from every program output");
      if (node.kind == ProgramNode::Kind::kOp) {
        const OperatorDef& def = program_.def_of(id);
        bool draws = def.rng_slots > 0;
        for (const PairFix* fix : plan_.fixes_for(id)) {
          if (graph::fix_draws_rng(fix->fix)) draws = true;
        }
        if (draws) {
          emit("dead-rng", Severity::kWarning, id,
               "dead op still draws private/fix RNG sequences — generator "
               "hardware charged for a value no output consumes");
        }
      }
    }
    for (const auto& [group, live] : group_live) {
      if (live) continue;
      emit("dead-rng", Severity::kWarning, graph::kInvalidNode,
           "RNG group " + std::to_string(group) +
               "'s trace feeds only dead values");
    }
  }

  void diagnose_constants() {
    // Roots of all-constant subgraphs: a foldable op that is an output or
    // has a non-foldable consumer (flagging every node of the subtree
    // would drown the listing).
    std::vector<bool> has_nonconstant_consumer(program_.node_count(), false);
    std::vector<bool> is_output(program_.node_count(), false);
    for (const NodeId id : program_.outputs()) is_output[id] = true;
    for (NodeId id = 0; id < program_.node_count(); ++id) {
      const ProgramNode& node = program_.node(id);
      if (node.kind != ProgramNode::Kind::kOp) continue;
      if (report_.facts[id].constant_only) continue;
      for (const NodeId operand : node.operands) {
        has_nonconstant_consumer[operand] = true;
      }
    }
    for (const NodeId id : program_.op_nodes()) {
      if (!report_.facts[id].constant_only || !report_.facts[id].live) {
        continue;
      }
      if (!is_output[id] && !has_nonconstant_consumer[id]) continue;
      emit("constant-foldable", Severity::kNote, id,
           "every transitive operand is a constant — the subgraph folds to "
           "a single constant stream (run with ExecConfig::optimize or "
           "opt::optimize)");
    }
  }

  const graph::Program& program_;
  const graph::ProgramPlan& plan_;
  const AnalyzerConfig& config_;
  AnalysisReport report_;
  std::map<std::string, std::uint32_t> value_numbers_;
};

}  // namespace

AnalysisReport analyze(const graph::Program& program,
                       const graph::ProgramPlan& plan,
                       const AnalyzerConfig& config) {
  obs::Telemetry* const telemetry = obs::fallback(config.telemetry);
  obs::Span span(obs::tracer_of(telemetry), "analysis.analyze", "analysis");
  AnalysisReport report = Analyzer(program, plan, config).run(true);
  append_accuracy_diagnostics(report, program, plan, config);
  span.arg("nodes", static_cast<std::uint64_t>(program.node_count()));
  span.arg("pairs", static_cast<std::uint64_t>(report.pairs.size()));
  span.arg("diagnostics",
           static_cast<std::uint64_t>(report.diagnostics.size()));
  span.arg("errors", static_cast<std::uint64_t>(report.count(
                         Severity::kError)));
  if (telemetry != nullptr) {
    obs::MetricsRegistry& metrics = telemetry->metrics();
    metrics.counter("analysis.runs").inc();
    metrics.counter("analysis.pairs_checked").add(report.pairs.size());
    metrics.counter("analysis.diagnostics").add(report.diagnostics.size());
    metrics.counter("analysis.errors").add(report.count(Severity::kError));
    metrics.counter("analysis.warnings")
        .add(report.count(Severity::kWarning));
    metrics.counter("analysis.seed_collisions")
        .add(report.seeds.collisions.size());
    metrics.counter("analysis.redundant_fixes")
        .add(report.redundant_fixes.size());
  }
  return report;
}

double plan_fragility(const graph::Program& program,
                      const graph::ProgramPlan& plan,
                      const AnalyzerConfig& config) {
  return Analyzer(program, plan, config).run(false).fragility;
}

AnalysisReport analyze_facts(const graph::Program& program,
                             const graph::ProgramPlan& plan,
                             const AnalyzerConfig& config) {
  return Analyzer(program, plan, config).run(false);
}

}  // namespace sc::analysis
