/// \file text_format.hpp
/// A small textual program format (.sct) for sc_lint and test corpora.
///
/// One statement per line; '#' starts a comment; blank lines ignored:
///
///   input <name> <value> [group=<n>]   generated input (default group 0)
///   const <name> <value>               constant (private RNG group)
///   op <name> <operator> <operand>...  registry operator over named values
///   output <name>                      mark a named value as an output
///
/// Example — Fig. 2 multiply needing uncorrelated operands:
///
///   # multiply two same-group inputs (requires a decorrelator)
///   input x 0.8 group=0
///   input y 0.6 group=0
///   op prod multiply x y
///   output prod
///
/// parse_program throws std::invalid_argument with the offending line
/// number on any malformed statement, unknown operator, arity mismatch,
/// or undefined operand name.  serialize_program writes a program back
/// out (round-trips through parse_program up to comments/ordering).

#pragma once

#include <string>

#include "graph/program.hpp"

namespace sc::analysis {

/// Parses the textual format into a Program built against `registry`.
graph::Program parse_program(
    const std::string& text,
    const graph::OperatorRegistry& registry = graph::registry());

/// Serializes a program into the textual format.  Constants keep their
/// auto-assigned private groups implicit (the `const` statement).
std::string serialize_program(const graph::Program& program);

}  // namespace sc::analysis
