#include "analysis/error_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "bitstream/encoding.hpp"

namespace sc::analysis {

using graph::ErrorAbs;
using graph::ErrorTransferInput;
using graph::FixKind;
using graph::NodeId;
using graph::OperatorDef;
using graph::PairFix;
using graph::ProgramNode;

namespace {

// Residual-correlation table: how far a pair's SCC may sit from the
// regime its consumer assumes, as a fraction of the Frechet width, by
// the proof or fix that delivers the regime.  Calibrated against the
// measured pairwise-vs-chain fanout-16 gap (BENCH_opt: 0.020 -> 0.052);
// soundness never hinges on them (trivial cap), selectivity does.

/// Pairwise decorrelator (two fresh shuffle buffers of depth D): both
/// sides re-randomized, residual alignment decays with buffer depth.
constexpr double kDecorrelatorResidualPerDepth = 0.125;
/// Chain link (one shared shuffle of depth D feeding the next copy):
/// single-shuffle decorrelation is measurably weaker — the whole point
/// of the chain rewrite's accuracy cost.
constexpr double kChainResidualPerDepth = 0.375;
/// Synchronizer / desynchronizer window of depth d: the counter only
/// steers a 1/(2d+1) share of cycles per window, so a pair that starts
/// at SCC +1 (e.g. an operator fed the same stream twice) keeps roughly
/// half the Frechet width at the default depth 2 — measured residuals
/// around 0.34 of the width drive the 2.5 numerator.
constexpr double kSyncResidualPerWindow = 2.5;
/// Regenerated pair: fresh SNG encodings, but both draw from the same
/// width-w LFSR family, and two period-P traces at a fixed relative
/// phase visit only P of the P^2 joint states — phase coupling leaves
/// up to ~0.3 of the Frechet width on unlucky seeds.
constexpr double kRegenerateResidual = 0.35;
/// Proven independent by disjoint effective-generator sets: distinct
/// maximal-length LFSR traces still share spectral structure — the same
/// period-coupling effect as regeneration (measured up to ~0.14 of the
/// Frechet width on unlucky seed/phase pairs).
constexpr double kIndependentResidual = 0.2;
/// Proven SCC +1/-1 by threshold-generator propagation: exact up to
/// comparator quantization, a few levels of 2^w.
constexpr double kTgenResidualLevels = 8.0;

/// precision-loss threshold: a deterministic bias this large dominates
/// any plausible stream length's stochastic noise.
constexpr double kPrecisionLossBias = 0.1;
/// correlation-bias threshold per op node.
constexpr double kCorrelationBiasFloor = 0.01;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

double trivial(double exact) { return std::max(exact, 1.0 - exact); }

/// LFSR-SNG envelope of a leaf (input/constant) stream encoding `value`:
/// exact asymptotic level on the 2^w - 1 trace, partial-period bias,
/// hypergeometric variance when N is shorter than one period.
ErrorAbs leaf_abs(double value, std::size_t stream_length, unsigned width) {
  const std::uint64_t natural = std::uint64_t{1} << width;
  const double period = static_cast<double>(natural - 1);
  const std::uint64_t level = sc::unipolar_level64(value, natural);
  // The trace visits 1 .. 2^w - 1 once per period; [trace < level] is
  // high on exactly min(level, 2^w) - 1 of them.
  const double ones =
      level == 0 ? 0.0
                 : static_cast<double>(std::min(level, natural) - 1);
  const double asymptotic = ones / period;
  const double n = static_cast<double>(std::max<std::size_t>(
      stream_length, 1));
  ErrorAbs out;
  out.bias = std::abs(value - asymptotic);
  out.var = 0.0;
  out.tau = 2.0;
  if (n >= period) {
    // Whole periods hit `asymptotic` exactly; the trailing partial
    // period contributes a deterministic phase-dependent remainder.
    out.bias += std::fmod(n, period) / n * trivial(asymptotic);
  } else {
    // Sampling N of P trace positions without replacement.
    out.var = asymptotic * (1.0 - asymptotic) / n * (1.0 - n / period);
  }
  out.bias = std::min(out.bias, trivial(value));
  out.lo = clamp01(value - out.bias);
  out.hi = clamp01(value + out.bias);
  return out;
}

/// Trivial-but-sound envelope for operators without a transfer.
ErrorAbs trivial_abs(double exact) {
  ErrorAbs out;
  out.lo = 0.0;
  out.hi = 1.0;
  out.bias = trivial(exact);
  out.var = 0.0;
  out.tau = 8.0;
  return out;
}

/// Buffer-fill transient of one fix in cycles (all of it lands in the
/// first cycles of the stream, so the program pays the deepest fix once,
/// not one share per fix).
double fix_warmup_cycles(const PairFix& fix, const AnalyzerConfig& config) {
  switch (fix.fix) {
    case FixKind::kDecorrelator:
    case FixKind::kDecorrelatorChain:
      return static_cast<double>(config.shuffle_depth);
    case FixKind::kSynchronizer:
    case FixKind::kDesynchronizer:
      return 2.0 * config.sync_depth + 1.0;
    case FixKind::kRegenerateShared:
    case FixKind::kRegenerateDistinct:
    case FixKind::kRegenerateComplementary:
    case FixKind::kNone:
      return 0.0;
  }
  return 0.0;
}

class Interpreter {
 public:
  Interpreter(const AnalysisReport& facts, const graph::Program& program,
              const graph::ProgramPlan& plan, const AnalyzerConfig& config)
      : facts_(facts), program_(program), plan_(plan), config_(config) {
    for (std::size_t i = 0; i < plan_.fixes.size(); ++i) {
      const PairFix& fix = plan_.fixes[i];
      pair_fix_[{fix.op_node, fix.operand_a, fix.operand_b}] = fix.fix;
    }
    for (const PairPrediction& pair : facts_.pairs) {
      predictions_[{pair.op_node, pair.operand_a, pair.operand_b}] = &pair;
    }
  }

  AccuracyReport run() {
    AccuracyReport report;
    report.stream_length = config_.stream_length;
    const std::vector<double> exact = program_.exact_values();
    report.nodes.resize(program_.node_count());

    for (NodeId id = 0; id < program_.node_count(); ++id) {
      const ProgramNode& node = program_.node(id);
      if (node.kind != ProgramNode::Kind::kOp) {
        report.nodes[id] =
            leaf_abs(node.value, config_.stream_length, config_.width);
        continue;
      }
      report.nodes[id] = op_abs(id, node, exact, report);
    }

    // Every fix's buffer-fill junk occupies the first max-depth cycles
    // of the stream, so outputs pay that window once.
    double warmup_cycles = 0.0;
    for (const PairFix& fix : plan_.fixes) {
      warmup_cycles =
          std::max(warmup_cycles, fix_warmup_cycles(fix, config_));
    }
    const double warmup = warmup_cycles / static_cast<double>(
        std::max<std::size_t>(config_.stream_length, 1));

    for (const NodeId out_node : program_.outputs()) {
      const ErrorAbs& abs = report.nodes[out_node];
      ErrorBound bound;
      bound.node = out_node;
      bound.name = program_.node(out_node).name;
      bound.exact = exact[out_node];
      bound.bias = std::min(abs.bias + warmup, trivial(bound.exact));
      bound.sigma = std::sqrt(std::max(abs.var, 0.0));
      bound.bound = std::min(trivial(bound.exact),
                             bound.bias + kNSigma * bound.sigma);
      bound.lo = clamp01(std::max(abs.lo, bound.exact - bound.bound));
      bound.hi = clamp01(std::min(abs.hi, bound.exact + bound.bound));
      if (bound.lo > bound.hi) {
        bound.lo = clamp01(bound.exact - bound.bound);
        bound.hi = clamp01(bound.exact + bound.bound);
      }
      report.worst_bound = std::max(report.worst_bound, bound.bound);
      report.outputs.push_back(std::move(bound));
    }
    return report;
  }

 private:
  ErrorAbs op_abs(NodeId id, const ProgramNode& node,
                  const std::vector<double>& exact,
                  const AccuracyReport& report) {
    const OperatorDef& def = program_.def_of(id);
    const double exact_out = exact[id];
    ErrorAbs out;
    if (def.error_transfer) {
      std::vector<ErrorAbs> operand_abs;
      std::vector<double> operand_exact;
      operand_abs.reserve(node.operands.size());
      operand_exact.reserve(node.operands.size());
      for (const NodeId operand : node.operands) {
        operand_abs.push_back(report.nodes[operand]);
        operand_exact.push_back(exact[operand]);
      }
      ErrorTransferInput in;
      in.operands = sc::span<const ErrorAbs>(operand_abs.data(),
                                             operand_abs.size());
      in.exact_operands = sc::span<const double>(operand_exact.data(),
                                                 operand_exact.size());
      in.exact = exact_out;
      in.residual = [this, id, &node](unsigned i, unsigned j) {
        return pair_residual(id, node, i, j);
      };
      in.stream_length = config_.stream_length;
      in.width = config_.width;
      out = def.error_transfer(in);
    } else {
      out = trivial_abs(exact_out);
    }
    // Normalize to a consistent sound state: measured and exact both
    // live in [0, 1], so bias never usefully exceeds the trivial
    // envelope, and the interval must contain exact +- bias.
    out.bias = std::min(out.bias, trivial(exact_out));
    out.corr = std::min(out.corr, out.bias);
    out.var = std::max(out.var, 0.0);
    double lo = std::max(out.lo, exact_out - out.bias);
    double hi = std::min(out.hi, exact_out + out.bias);
    if (lo > hi) {
      lo = exact_out - out.bias;
      hi = exact_out + out.bias;
    }
    out.lo = clamp01(lo);
    out.hi = clamp01(hi);
    return out;
  }

  /// Residual of operand pair (i, j) of `id` after planned fixes, from
  /// the correlation dataflow analysis (see the table above).
  [[nodiscard]] double pair_residual(NodeId id, const ProgramNode& node,
                                     unsigned i,
                       unsigned j) const {
    const auto it = predictions_.find({id, i, j});
    if (it == predictions_.end()) {
      // Agnostic pair (no prediction): fall back to the raw-stream
      // class.  Fixes of *other* pairs may still shuffle these slots,
      // so kUnknown here stays conservative rather than wrong.
      switch (facts_.node_class(node.operands[i], node.operands[j])) {
        case SccClass::kIndependent:
          return kIndependentResidual;
        case SccClass::kCorrelated:
        case SccClass::kAnticorrelated:
          return tgen_residual();
        case SccClass::kUnknown:
          return 1.0;
      }
      return 1.0;
    }
    const PairPrediction& pair = *it->second;
    if (!pair.satisfied) return 1.0;
    switch (pair.fix) {
      case FixKind::kDecorrelator:
        return kDecorrelatorResidualPerDepth /
               static_cast<double>(std::max<std::size_t>(
                   config_.shuffle_depth, 1));
      case FixKind::kDecorrelatorChain:
        return chain_residual();
      case FixKind::kSynchronizer:
      case FixKind::kDesynchronizer:
        return kSyncResidualPerWindow /
               (2.0 * std::max(config_.sync_depth, 1u) + 1.0);
      case FixKind::kRegenerateShared:
      case FixKind::kRegenerateDistinct:
      case FixKind::kRegenerateComplementary:
        return kRegenerateResidual;
      case FixKind::kNone:
        break;
    }
    // Satisfied without a fix of its own: either proven on the raw
    // streams, or covered by another pair's shuffle (the chain's
    // transitive-coverage rule) — the latter keeps the weaker
    // single-shuffle residual.
    if (pair.at_gate == SccClass::kIndependent) {
      return pair.operands == SccClass::kIndependent ? kIndependentResidual
                                                     : chain_residual();
    }
    return tgen_residual();
  }

  [[nodiscard]] double chain_residual() const {
    return kChainResidualPerDepth / static_cast<double>(
        std::max<std::size_t>(config_.shuffle_depth, 1));
  }

  [[nodiscard]] double tgen_residual() const {
    return kTgenResidualLevels /
           static_cast<double>(std::uint64_t{1} << config_.width);
  }

  const AnalysisReport& facts_;
  const graph::Program& program_;
  const graph::ProgramPlan& plan_;
  const AnalyzerConfig& config_;
  std::map<std::tuple<NodeId, unsigned, unsigned>, FixKind> pair_fix_;
  std::map<std::tuple<NodeId, unsigned, unsigned>, const PairPrediction*>
      predictions_;
};

/// min_stream_length over already-computed facts (the pair predictions
/// do not depend on N, so one dataflow analysis serves every probe).
std::size_t min_stream_length_with(const AnalysisReport& facts,
                                   const graph::Program& program,
                                   const graph::ProgramPlan& plan,
                                   double target_rmse,
                                   const AnalyzerConfig& config) {
  if (target_rmse <= 0.0) return 0;
  AnalyzerConfig probe = config;
  for (std::size_t n = 64; n <= (std::size_t{1} << 26); n *= 2) {
    probe.stream_length = n;
    const AccuracyReport report =
        Interpreter(facts, program, plan, probe).run();
    if (report.worst_bound <= target_rmse) return n;
  }
  return 0;
}

}  // namespace

std::string AccuracyReport::to_text() const {
  std::ostringstream out;
  for (const ErrorBound& bound : outputs) {
    out << "output '" << bound.name << "' (#" << bound.node
        << "): exact " << bound.exact << ", |error| <= " << bound.bound
        << " (bias " << bound.bias << " + " << kNSigma << " sigma "
        << bound.sigma << "), E[measured] in [" << bound.lo << ", "
        << bound.hi << "]\n";
  }
  out << "worst output bound " << worst_bound << " at N = " << stream_length
      << "\n";
  return out.str();
}

AccuracyReport plan_accuracy(const graph::Program& program,
                             const graph::ProgramPlan& plan,
                             const AnalyzerConfig& config) {
  const AnalysisReport facts = analyze_facts(program, plan, config);
  return Interpreter(facts, program, plan, config).run();
}

AccuracyReport plan_accuracy_with(const AnalysisReport& facts,
                                  const graph::Program& program,
                                  const graph::ProgramPlan& plan,
                                  const AnalyzerConfig& config) {
  return Interpreter(facts, program, plan, config).run();
}

double plan_error(const graph::Program& program,
                  const graph::ProgramPlan& plan,
                  const AnalyzerConfig& config) {
  return plan_accuracy(program, plan, config).worst_bound;
}

std::size_t min_stream_length(const graph::Program& program,
                              const graph::ProgramPlan& plan,
                              double target_rmse,
                              const AnalyzerConfig& config) {
  const AnalysisReport facts = analyze_facts(program, plan, config);
  return min_stream_length_with(facts, program, plan, target_rmse, config);
}

void append_accuracy_diagnostics(AnalysisReport& report,
                                 const graph::Program& program,
                                 const graph::ProgramPlan& plan,
                                 const AnalyzerConfig& config) {
  const AccuracyReport accuracy =
      plan_accuracy_with(report, program, plan, config);
  report.worst_error_bound = accuracy.worst_bound;

  const auto emit = [&](std::string id, NodeId node, std::string message) {
    Diagnostic d;
    d.id = std::move(id);
    d.severity = Severity::kWarning;
    d.node = node;
    if (node != graph::kInvalidNode) d.name = program.node(node).name;
    d.message = std::move(message);
    report.diagnostics.push_back(std::move(d));
  };

  // precision-loss: deterministically biased outputs (output order).
  for (const ErrorBound& bound : accuracy.outputs) {
    if (bound.bias <= kPrecisionLossBias) continue;
    std::ostringstream message;
    message << "output's deterministic bias bound " << bound.bias
            << " exceeds " << kPrecisionLossBias
            << " — the estimate is biased, not merely noisy, so longer "
               "streams cannot recover it (exact " << bound.exact
            << ", total bound " << bound.bound << ")";
    emit("precision-loss", bound.node, message.str());
  }

  // saturation-risk / correlation-bias: live ops, node order.
  for (const NodeId id : program.op_nodes()) {
    if (!report.facts[id].live) continue;
    const ErrorAbs& abs = accuracy.nodes[id];
    if (abs.saturated) {
      std::ostringstream message;
      message << "saturating operator clips: the exact operand sum rides "
                 "the [0, 1] boundary, so magnitude information is "
                 "destroyed regardless of stream quality (output interval ["
              << abs.lo << ", " << abs.hi << "])";
      emit("saturation-risk", id, message.str());
    }
    if (abs.corr >= kCorrelationBiasFloor) {
      std::ostringstream message;
      message << "residual operand correlation contributes up to "
              << abs.corr
              << " bias at this gate (Frechet-envelope share after "
                 "planned fixes); tighter fixes or deeper buffers shrink "
                 "it";
      emit("correlation-bias", id, message.str());
    }
  }

  // insufficient-stream-length: requested RMSE vs configured N.
  if (config.target_rmse > 0.0 &&
      accuracy.worst_bound > config.target_rmse) {
    const std::size_t needed = min_stream_length_with(
        report, program, plan, config.target_rmse, config);
    std::ostringstream message;
    if (needed == 0) {
      message << "requested RMSE " << config.target_rmse
              << " is unachievable at any stream length: the "
                 "deterministic bias alone exceeds it (predicted bound "
              << accuracy.worst_bound << " at N = " << config.stream_length
              << ")";
    } else {
      message << "configured stream length " << config.stream_length
              << " predicts |error| <= " << accuracy.worst_bound
              << ", above the requested RMSE " << config.target_rmse
              << "; minimum stream length " << needed;
    }
    emit("insufficient-stream-length", graph::kInvalidNode, message.str());
  }

  // chain-unrecoverable: chain links whose post-fault disturbance
  // persists to stream end across >= 2 downstream copies (fault::sweep's
  // recovery-depth ground truth).  One warning per op node.
  std::map<NodeId, double> chain_blast;
  for (const FixFragility& entry : report.fix_fragility) {
    if (entry.kind != FixKind::kDecorrelatorChain) continue;
    if (entry.blast < 2.0) continue;
    if (entry.persistence <
        static_cast<double>(config.stream_length)) {
      continue;
    }
    chain_blast[entry.op_node] =
        std::max(chain_blast[entry.op_node], entry.blast);
  }
  for (const auto& [node, blast] : chain_blast) {
    std::ostringstream message;
    message << "a fault in this decorrelator chain never re-converges "
               "within the stream (recovery depth >= N = "
            << config.stream_length << " across "
            << static_cast<std::size_t>(blast)
            << " downstream copies); consider ReCo1-style recorrelation "
               "after the fan-out — re-synchronizing the copies bounds "
               "the post-fault error horizon at the cost of one "
               "synchronizer per copy";
    emit("chain-unrecoverable", node, message.str());
  }
}

}  // namespace sc::analysis
