/// \file analyzer.hpp
/// Static correlation & seed-provenance analysis for planned programs.
///
/// The paper's premise is that SC correctness is a *static* property of
/// the dataflow graph: which operand pairs need SCC +1 / 0 / -1 streams
/// (Fig. 2), and whether the design delivers them.  The planner answers
/// half of that — it inserts fixes where its lineage analysis cannot
/// prove a requirement — but it reasons about RNG *group ids* and never
/// looks back at what its own insertions do to neighbouring pairs, what
/// the seed derivation actually lands on after width-masking, or what a
/// rewrite left behind.  This analyzer closes the loop with a
/// compiler-style semantic pass over (Program, ProgramPlan):
///
///  1. **Seed provenance** (provenance.hpp): every derived seed with its
///     effective (width-masked) generator identity; exact and masked
///     collisions become `seed-collision` diagnostics.
///  2. **Correlation dataflow**: an SCC-class lattice (correlated /
///     independent / anticorrelated / unknown) propagated through the
///     graph.  Three proof techniques stack:
///       * threshold-generator propagation — inputs are threshold
///         encodings of their group trace, and operators declared
///         CorrelationEffect::kPreserving (monotone AND/OR gates) keep
///         that shape, so same-trace pairs are SCC = +1 *exactly*;
///         kInverting (NOT) flips the comparison direction, giving
///         SCC = -1 exactly;
///       * value numbering — structurally identical subcomputations
///         (the CSE criterion) produce bit-identical streams;
///       * generator-set independence — two streams are independent when
///         their effective-generator sets are disjoint (group ids are
///         not enough: masked seed collisions merge groups).
///     Planned fixes then transform the classes slot-wise (a shuffle
///     decorrelates against everything; sync/desync/regeneration pair
///     their two outputs), so every operand pair gets a predicted class
///     *at the gate*.
///  3. **Typed diagnostics** with stable ids (Diagnostic::id):
///     requirement-violation, seed-collision, redundant-fix,
///     chain-reconvergence, dead-rng, dead-value, constant-foldable.
///  4. **Static fragility**: per-fix state_bits x blast x persistence
///     scores — the decorrelator-chain reconvergence structure
///     (BENCH_fault: one SEU in a chain link poisons every downstream
///     copy, recovery_depth ~ stream length, vs 2-5 cycles for
///     sync/desync) becomes a number the optimizer's future Pareto gate
///     can budget against (OptResult::fragility_before/after).
///
/// Validation: analysis_property_test checks predicted classes against
/// measured bitstream::scc on random programs (all three backends) and
/// runs the planner differentially — every planner violation must be an
/// analyzer error unless the analyzer *proved* a satisfying class, and
/// those proofs are themselves measured.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/provenance.hpp"
#include "graph/backend.hpp"
#include "graph/planner.hpp"
#include "graph/program.hpp"

namespace sc::obs {
class Telemetry;
}

namespace sc::analysis {

/// Predicted SCC regime of a stream pair (the lattice of the dataflow
/// analysis; kUnknown is the top element).
enum class SccClass {
  kCorrelated,      ///< provably SCC = +1
  kIndependent,     ///< provably SCC ~ 0 (disjoint generator sets)
  kAnticorrelated,  ///< provably SCC = -1
  kUnknown,
};

std::string to_string(SccClass value);

/// True when a pair of `value`-class streams provably meets `requirement`
/// (the analyzer's counterpart of graph::requirement_satisfied — unlike
/// the planner's Relation, the lattice can prove kNegative).
bool class_satisfies(graph::Requirement requirement, SccClass value);

enum class Severity { kError, kWarning, kNote };

std::string to_string(Severity severity);

/// One finding.  `id` is the stable machine-readable diagnostic class —
/// tests and CI match on it, so ids are append-only:
///   requirement-violation  (error)    pair provably / not provably in its
///                                     required regime at the gate
///   seed-collision         (error when two derived seeds run identical
///                          generators, warning for structurally related
///                          masked aliases)
///   redundant-fix          (warning)  inserted circuit whose removal
///                                     leaves every pair of its op satisfied
///   chain-reconvergence    (warning)  decorrelator chain sharing upstream
///                                     state across >= 2 downstream copies
///   dead-rng               (warning)  generator drawn only by dead values
///   dead-value             (note)     node unreachable from any output
///   constant-foldable      (note)     all-constant subgraph not yet folded
/// plus the accuracy family appended by the error model
/// (error_model.hpp's append_accuracy_diagnostics): precision-loss,
/// saturation-risk, correlation-bias, insufficient-stream-length,
/// chain-unrecoverable — all warnings.
struct Diagnostic {
  std::string id;
  Severity severity = Severity::kNote;
  graph::NodeId node = graph::kInvalidNode;  ///< primary node, if any
  std::string name;                          ///< node name, if any
  std::string message;
};

/// Predicted regime of one examined operand pair.
struct PairPrediction {
  graph::NodeId op_node = 0;
  unsigned operand_a = 0;
  unsigned operand_b = 1;
  graph::Requirement requirement = graph::Requirement::kAgnostic;
  graph::FixKind fix = graph::FixKind::kNone;
  /// Class of the two raw operand streams (what the property test checks
  /// against measured SCC of the node streams).
  SccClass operands = SccClass::kUnknown;
  /// Class the operator actually sees after every planned fix of its node
  /// ran (slot-wise transform semantics).
  SccClass at_gate = SccClass::kUnknown;
  bool satisfied = false;
};

/// An inserted fix whose removal keeps every pair of its op satisfied.
struct RedundantFix {
  std::size_t fix_index = 0;  ///< into ProgramPlan::fixes
  graph::NodeId op_node = 0;
  unsigned operand_a = 0;
  unsigned operand_b = 1;
  /// Class the fix's own pair would have without it (the proof that the
  /// circuit buys nothing).
  SccClass without_fix = SccClass::kUnknown;
};

/// Static fragility of one inserted circuit: how much persistent state it
/// holds, how many operand streams one upset of that state reaches, and
/// for how many cycles the disturbance persists (fault::sweep's
/// recovery-depth measurements are the empirical ground truth: shuffle
/// buffers never recover within a stream, sync/desync recover in
/// O(depth) cycles).
struct FixFragility {
  std::size_t fix_index = 0;
  graph::NodeId op_node = 0;
  graph::FixKind kind = graph::FixKind::kNone;
  double state_bits = 0.0;
  double blast = 1.0;        ///< downstream streams one upset poisons
  double persistence = 0.0;  ///< cycles the disturbance persists
  double score = 0.0;        ///< state_bits * blast * persistence
};

/// Analyzer knobs — mirrors the execution parameters that shape seeds and
/// inserted circuits.  Build one from an ExecConfig with from().
struct AnalyzerConfig {
  std::size_t stream_length = 256;
  unsigned width = 8;
  std::uint32_t seed = 3;
  unsigned sync_depth = 2;
  std::size_t shuffle_depth = 8;
  /// Requested output RMSE for the insufficient-stream-length check
  /// (error_model.hpp); 0 disables it.  sc_lint's --target-rmse.
  double target_rmse = 0.0;
  /// Telemetry context (src/obs/): analyze() records an
  /// "analysis.analyze" span and analysis.* counters.  Non-owning,
  /// nullptr = env fallback, exactly as ExecConfig::telemetry.
  obs::Telemetry* telemetry = nullptr;

  static AnalyzerConfig from(const graph::ExecConfig& config);
};

/// Everything analyze() proved about one (program, plan).
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<PairPrediction> pairs;
  std::vector<RedundantFix> redundant_fixes;
  std::vector<FixFragility> fix_fragility;
  /// Sum of fix fragility scores (the optimizer's static fragility input).
  double fragility = 0.0;
  /// Worst predicted per-output |error| bound at config.stream_length
  /// (error_model.hpp; filled by analyze(), 0 on facts-only runs).
  double worst_error_bound = 0.0;
  SeedReport seeds;

  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] bool has_errors() const { return count(Severity::kError) > 0; }

  /// Predicted SCC class between the *raw* streams of two program nodes
  /// (before any fix of a consuming op) — the quantity measured by
  /// bitstream::scc over ExecutionResult::streams.
  [[nodiscard]] SccClass node_class(graph::NodeId a, graph::NodeId b) const;

  /// Human-readable listing (one line per diagnostic plus a summary).
  [[nodiscard]] std::string to_text() const;
  /// Machine-readable JSON (the sc_lint --json schema; see
  /// tools/validate_lint.py): source, summary counts, diagnostics, pair
  /// predictions, fragility.
  [[nodiscard]] std::string to_json(const std::string& source = "") const;

  // ------------------------------------------------------------ internals
  /// Per-node abstract state of the dataflow analysis, exposed so tests
  /// and the optimizer can interrogate the proofs behind the verdicts.
  struct NodeFacts {
    /// Effective generators in the node's randomness cone (sorted unique).
    std::vector<GeneratorId> provenance;
    /// Threshold-generator claim: the stream is a threshold encoding of
    /// this generator's trace ([trace < level], or [trace >= level] when
    /// inverted) — exact SCC +1 / -1 against same-generator peers.
    bool has_tgen = false;
    GeneratorId tgen;
    bool tgen_inverted = false;
    std::uint32_t value_number = 0;  ///< equal number => identical stream
    bool live = false;               ///< reaches some output
    bool constant_only = false;      ///< every transitive leaf is constant
  };
  std::vector<NodeFacts> facts;
};

/// Runs the full analysis.  Pure — no program/plan mutation, no
/// execution; cost is O(nodes + pairs + fixes^2 per node).
AnalysisReport analyze(const graph::Program& program,
                       const graph::ProgramPlan& plan,
                       const AnalyzerConfig& config = {});

/// Just the fragility total of a plan (the opt:: hook; avoids paying for
/// diagnostics rendering when only the metric is wanted).
double plan_fragility(const graph::Program& program,
                      const graph::ProgramPlan& plan,
                      const AnalyzerConfig& config = {});

/// Facts-only analysis: node facts, pair predictions, and fragility, no
/// diagnostics or seed report.  The error model's substrate
/// (error_model.hpp) — lets plan_accuracy run the dataflow analysis
/// without rendering, and analyze() reuse one report for both.
AnalysisReport analyze_facts(const graph::Program& program,
                             const graph::ProgramPlan& plan,
                             const AnalyzerConfig& config = {});

}  // namespace sc::analysis
