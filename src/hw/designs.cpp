#include "hw/designs.hpp"

#include "common/bitops.hpp"
#include <cassert>
#include <sstream>

namespace sc::hw {

unsigned state_bits(std::size_t states) {
  assert(states >= 1);
  return states <= 1 ? 1u : static_cast<unsigned>(sc::bit_width64(states - 1));
}

Netlist or_gate_netlist() {
  Netlist n("or");
  n.add(Cell::kOr2);
  return n;
}

Netlist and_gate_netlist() {
  Netlist n("and");
  n.add(Cell::kAnd2);
  return n;
}

Netlist xor_gate_netlist() {
  Netlist n("xor");
  n.add(Cell::kXor2);
  return n;
}

Netlist xnor_gate_netlist() {
  Netlist n("xnor");
  n.add(Cell::kXnor2);
  return n;
}

Netlist mux_adder_netlist() {
  Netlist n("mux-add");
  n.add(Cell::kMux2);
  return n;
}

Netlist toggle_adder_netlist() {
  // T flip-flop (DFF + INV feedback) steering a MUX on differing inputs.
  Netlist n("toggle-add");
  n.add(Cell::kDff).add(Cell::kInv).add(Cell::kXor2).add(Cell::kMux2);
  return n;
}

Netlist cordiv_netlist() {
  // Quotient-bit hold register + output select.
  Netlist n("cordiv");
  n.add(Cell::kDff).add(Cell::kMux2).add(Cell::kAnd2);
  return n;
}

namespace {

/// Shared FSM expansion: `bits` state flops plus next-state/output logic
/// that grows linearly with the state register width (what 2-level
/// synthesis of these small symmetric FSMs yields in practice).
Netlist fsm_netlist(std::string label, unsigned bits, unsigned extra_logic) {
  Netlist n(std::move(label));
  n.add(Cell::kDff, bits);
  n.add(Cell::kAnd2, 2 + bits);
  n.add(Cell::kOr2, 1 + bits);
  n.add(Cell::kInv, 1 + bits);
  n.add(Cell::kXor2, 1);
  n.add(Cell::kNand2, 2 * bits + extra_logic);
  return n;
}

/// Offset tracking for flush mode: a down-counter of `offset_bits` plus a
/// saved-count comparator (paper §III-B calls this "tremendously expensive"
/// next to the base FSM; the numbers here show why).
Netlist flush_tracker(unsigned offset_bits) {
  Netlist n("flush");
  n.add(Cell::kDff, offset_bits);
  n.add(Cell::kHalfAdder, offset_bits);
  n.add(Cell::kNand2, offset_bits);
  n.add(Cell::kOr2, offset_bits / 2 + 1);
  return n;
}

}  // namespace

Netlist synchronizer_netlist(unsigned depth, bool flush,
                             unsigned offset_bits) {
  assert(depth >= 1);
  std::ostringstream label;
  label << "sync(D=" << depth << (flush ? ",flush" : "") << ")";
  const unsigned bits = state_bits(2 * static_cast<std::size_t>(depth) + 1);
  Netlist n = fsm_netlist(label.str(), bits, 0);
  if (flush) n += flush_tracker(offset_bits);
  n.set_label(label.str());
  return n;
}

Netlist desynchronizer_netlist(unsigned depth, bool flush,
                               unsigned offset_bits) {
  assert(depth >= 1);
  std::ostringstream label;
  label << "desync(D=" << depth << (flush ? ",flush" : "") << ")";
  const unsigned bits = state_bits(2 * static_cast<std::size_t>(depth) + 2);
  // The desynchronizer's transition structure (alternating donor side) needs
  // a little more output logic than the synchronizer.
  Netlist n = fsm_netlist(label.str(), bits, 3);
  if (flush) n += flush_tracker(offset_bits);
  n.set_label(label.str());
  return n;
}

Netlist shuffle_buffer_netlist(std::size_t depth) {
  assert(depth >= 1);
  std::ostringstream label;
  label << "shuffle(D=" << depth << ")";
  Netlist n(label.str());
  n.add(Cell::kDffEn, depth);                       // bit slots
  n.add(Cell::kAnd2, depth);                        // address decode enables
  n.add(Cell::kMux2, depth);                        // output mux tree + pass
  n.add(Cell::kInv, state_bits(depth + 1));         // address complement
  return n;
}

Netlist decorrelator_netlist(std::size_t depth) {
  std::ostringstream label;
  label << "decorrelator(D=" << depth << ")";
  Netlist n = shuffle_buffer_netlist(depth) + shuffle_buffer_netlist(depth);
  n.set_label(label.str());
  return n;
}

Netlist isolator_netlist(std::size_t delay) {
  std::ostringstream label;
  label << "isolator(d=" << delay << ")";
  Netlist n(label.str());
  n.add(Cell::kDff, delay);
  return n;
}

Netlist tfm_netlist(unsigned precision) {
  std::ostringstream label;
  label << "tfm(k=" << precision << ")";
  Netlist n(label.str());
  n.add(Cell::kDff, precision + 1);        // EMA register
  n.add(Cell::kFullAdder, precision);      // EMA update adder/subtractor
  n += comparator_netlist(precision);      // regeneration comparator
  n.set_label(label.str());
  return n;
}

Netlist lfsr_netlist(unsigned width) {
  std::ostringstream label;
  label << "lfsr" << width;
  Netlist n(label.str());
  n.add(Cell::kDff, width);
  n.add(Cell::kXor2, 3);  // feedback taps (<= 4 taps for maximal LFSRs)
  return n;
}

Netlist comparator_netlist(unsigned width) {
  std::ostringstream label;
  label << "cmp" << width;
  // Ripple magnitude comparator: per bit XNOR (equality) + AND (chain).
  Netlist n(label.str());
  n.add(Cell::kXnor2, width);
  n.add(Cell::kAnd2, width);
  return n;
}

Netlist sng_netlist(unsigned width, bool include_rng) {
  std::ostringstream label;
  label << "sng" << width << (include_rng ? "" : "(shared-rng)");
  Netlist n(label.str());
  if (include_rng) n += lfsr_netlist(width);
  n += comparator_netlist(width);
  n.set_label(label.str());
  return n;
}

Netlist sd_converter_netlist(unsigned bits) {
  std::ostringstream label;
  label << "sd" << bits;
  // Ones counter: register + increment chain.
  Netlist n(label.str());
  n.add(Cell::kDff, bits);
  n.add(Cell::kHalfAdder, bits);
  return n;
}

Netlist regenerator_netlist(unsigned bits, bool include_rng) {
  std::ostringstream label;
  label << "regen" << bits << (include_rng ? "(private-rng)" : "");
  // S/D counter + holding register (the counted level must persist while
  // the next stream is counted) + D/S comparator.
  Netlist n = sd_converter_netlist(bits);
  n.add(Cell::kDff, bits);
  n += comparator_netlist(bits);
  if (include_rng) n += lfsr_netlist(bits);
  n.set_label(label.str());
  return n;
}

Netlist sync_max_netlist(unsigned depth) {
  std::ostringstream label;
  label << "sync-max(D=" << depth << ")";
  Netlist n = synchronizer_netlist(depth) + or_gate_netlist();
  n.set_label(label.str());
  return n;
}

Netlist sync_min_netlist(unsigned depth) {
  std::ostringstream label;
  label << "sync-min(D=" << depth << ")";
  Netlist n = synchronizer_netlist(depth) + and_gate_netlist();
  n.set_label(label.str());
  return n;
}

Netlist desync_sat_add_netlist(unsigned depth) {
  std::ostringstream label;
  label << "desync-satadd(D=" << depth << ")";
  Netlist n = desynchronizer_netlist(depth) + or_gate_netlist();
  n.set_label(label.str());
  return n;
}

Netlist fsm_unit_netlist(std::size_t states) {
  std::ostringstream label;
  label << "fsm-unit(S=" << states << ")";
  // Saturating up/down counter + threshold decode on the state register.
  const unsigned bits = state_bits(states);
  Netlist n = fsm_netlist(label.str(), bits, 0);
  n.add(Cell::kAnd2, bits);  // threshold comparator
  n.set_label(label.str());
  return n;
}

Netlist mux_tree_netlist(unsigned inputs, unsigned width) {
  std::ostringstream label;
  label << "mux-tree(" << inputs << ":1)";
  Netlist n(label.str());
  // inputs-1 two-input muxes plus the weighted select decode off the
  // shared RNG's low bits.
  n.add(Cell::kMux2, inputs >= 1 ? inputs - 1 : 0);
  n.add(Cell::kAnd2, state_bits(inputs));
  n.add(Cell::kInv, state_bits(inputs));
  (void)width;  // select RNG charged by the owner (amortized per tile)
  return n;
}

Netlist roberts_cross_netlist() {
  Netlist n("roberts-cross");
  n.add(Cell::kXor2, 2);  // the two diagonal gradients
  n.add(Cell::kMux2, 1);  // gradient scaled add
  return n;
}

Netlist resc_netlist(std::size_t degree, unsigned width) {
  std::ostringstream label;
  label << "resc(n=" << degree << ")";
  // Copy popcount adder tree, one comparator SNG per coefficient stream
  // (their RNG amortized to one LFSR), and the coefficient select tree.
  Netlist n(label.str());
  n.add(Cell::kFullAdder, degree >= 1 ? degree - 1 : 0);
  for (std::size_t i = 0; i <= degree; ++i) n += comparator_netlist(width);
  n += lfsr_netlist(width);
  n.add(Cell::kMux2, degree);  // (degree+1)-to-1 coefficient select
  n.set_label(label.str());
  return n;
}

Netlist ca_max_netlist(unsigned counter_bits) {
  std::ostringstream label;
  label << "ca-max(b=" << counter_bits << ")";
  // Up/down counter tracking count(x) - count(y), sign bit steers a mux.
  Netlist n(label.str());
  n.add(Cell::kDff, counter_bits);
  n.add(Cell::kFullAdder, counter_bits);
  n.add(Cell::kMux2, 1);
  n.add(Cell::kInv, 1);
  return n;
}

}  // namespace sc::hw
