/// \file designs.hpp
/// Structural netlists for every design evaluated in the paper.
///
/// Each function expands a circuit into standard-cell counts the way a
/// synthesis tool would: FSM state bits become flip-flops plus next-state /
/// output logic proportional to the state count; memories become
/// enable-flops plus decode and mux cells; counters become flip-flop +
/// adder chains.  Composite designs (sync-max, regenerator, the image
/// pipeline in sc::img) are sums of these.

#pragma once

#include <cstddef>

#include "hw/netlist.hpp"

namespace sc::hw {

// --- single-gate SC operators (paper Fig. 2 / Table III baselines) -------

Netlist or_gate_netlist();        ///< OR-max / OR saturating add
Netlist and_gate_netlist();       ///< AND-min / AND multiply
Netlist xor_gate_netlist();       ///< XOR subtractor
Netlist xnor_gate_netlist();      ///< bipolar multiplier
Netlist mux_adder_netlist();      ///< MUX scaled adder (select gen excluded)
Netlist toggle_adder_netlist();   ///< deterministic CA adder (ref [9] class)
Netlist cordiv_netlist();         ///< correlated divider (ref [6])

// --- correlation manipulating circuits (paper §III) ----------------------

/// Synchronizer FSM with save depth D; 2D+1 states.
/// \param flush        adds the stream-offset tracking hardware of §III-B
/// \param offset_bits  width of the offset counter when flush is enabled
Netlist synchronizer_netlist(unsigned depth, bool flush = false,
                             unsigned offset_bits = 8);

/// Desynchronizer FSM with save depth D; 2D+2 states (alternation).
Netlist desynchronizer_netlist(unsigned depth, bool flush = false,
                               unsigned offset_bits = 8);

/// Shuffle buffer with D storage slots (paper Fig. 4b).
Netlist shuffle_buffer_netlist(std::size_t depth);

/// Decorrelator: two shuffle buffers (paper Fig. 4a).  Aux RNGs are charged
/// separately (they are amortized across many decorrelators in practice);
/// add lfsr_netlist() explicitly when accounting unshared RNGs.
Netlist decorrelator_netlist(std::size_t depth);

/// Isolator: `delay` flip-flops on one stream (ref [10]).
Netlist isolator_netlist(std::size_t delay);

/// Tracking forecast memory: EMA register + adder + regeneration
/// comparator (ref [11]).  Aux RNG charged separately.
Netlist tfm_netlist(unsigned precision);

// --- converters and sources (paper Fig. 2f/g) -----------------------------

Netlist lfsr_netlist(unsigned width);
Netlist comparator_netlist(unsigned width);
/// D/S converter; include_rng=false models an SNG sharing an external RNG.
Netlist sng_netlist(unsigned width, bool include_rng = true);
/// S/D converter: `bits`-wide ones counter.
Netlist sd_converter_netlist(unsigned bits);
/// Regeneration unit per stream: S/D counter + holding register + D/S
/// comparator.  The D/S RNG is shared across the bus; pass include_rng=true
/// to charge a private one.
Netlist regenerator_netlist(unsigned bits, bool include_rng = false);

// --- improved operators (paper Fig. 5 / Table III) ------------------------

Netlist sync_max_netlist(unsigned depth = 1);
Netlist sync_min_netlist(unsigned depth = 1);
Netlist desync_sat_add_netlist(unsigned depth = 1);
/// Correlation-agnostic max (ref [12] class): up/down counter + steering.
Netlist ca_max_netlist(unsigned counter_bits = 16);

// --- registry composite operators (graph/registry.cpp) --------------------

/// Saturating up/down counter FSM function unit (Brown–Card stanh/sexp):
/// state register plus threshold decode.
Netlist fsm_unit_netlist(std::size_t states);

/// `inputs`-to-1 MUX tree plus its select decode (the §IV Gaussian-blur
/// stage); the select RNG is charged via lfsr_netlist by the caller that
/// owns it (it is amortized across a tile in the real accelerator).
Netlist mux_tree_netlist(unsigned inputs, unsigned width);

/// Roberts-cross edge stage: two diagonal XORs + gradient MUX (select RNG
/// charged separately).
Netlist roberts_cross_netlist();

/// ReSC/Bernstein unit of the given degree: copy popcount adder tree,
/// n+1 coefficient SNG comparators (coefficient RNGs amortized: one LFSR),
/// and the coefficient-select mux tree.
Netlist resc_netlist(std::size_t degree, unsigned width);

/// Number of FSM state bits for a state count (ceil(log2(states))).
unsigned state_bits(std::size_t states);

}  // namespace sc::hw
