/// \file netlist.hpp
/// Cell-count netlists and their composition algebra.
///
/// A Netlist is a multiset of cells (plus a label).  Designs compose by
/// addition (a pipeline is the sum of its kernels, converters, and
/// manipulators), and replicate by integer scaling (a tile processes 100
/// pixels in parallel => 100 copies of the per-pixel hardware).

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "hw/cells.hpp"

namespace sc::hw {

/// Multiset of standard cells.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string label) : label_(std::move(label)) {}

  /// Adds `count` instances of a cell.
  Netlist& add(Cell cell, std::uint64_t count = 1) {
    counts_[static_cast<std::size_t>(cell)] += count;
    return *this;
  }

  [[nodiscard]] std::uint64_t count(Cell cell) const {
    return counts_[static_cast<std::size_t>(cell)];
  }

  /// Total number of cell instances.
  [[nodiscard]] std::uint64_t total_cells() const;

  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Merges another netlist into this one.
  Netlist& operator+=(const Netlist& other);
  friend Netlist operator+(Netlist lhs, const Netlist& rhs) {
    lhs += rhs;
    return lhs;
  }

  /// Replicates the netlist `factor` times.
  Netlist& operator*=(std::uint64_t factor);
  friend Netlist operator*(Netlist lhs, std::uint64_t factor) {
    lhs *= factor;
    return lhs;
  }

  /// Summed placed area in um^2.
  [[nodiscard]] double area_um2() const;

  /// One-line cell inventory, e.g. "sync(D=1): 2xDFF 4xAND2 ...".
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::uint64_t, kCellCount> counts_{};
  std::string label_;
};

}  // namespace sc::hw
