/// \file cost.hpp
/// Area / power / energy evaluation of netlists.
///
/// power  = sum(leakage) + f_clk * sum_cells(activity(cell) * E_switch)
/// energy = power * cycles / f_clk
///
/// Flip-flops switch at clock activity (1.0); combinational cells switch at
/// the configured data activity (default 0.5, the toggle rate of a p = 0.5
/// stochastic stream).  The default operating point (100 MHz, 2^16 cycles
/// per operation) matches the point implied by the paper's Table III
/// power/energy ratios; see hw/cells.hpp for the calibration note.

#pragma once

#include <cstdint>
#include <string>

#include "hw/netlist.hpp"

namespace sc::hw {

/// Operating point for power/energy evaluation.
struct CostConfig {
  double clock_hz = 100e6;       ///< clock frequency
  std::uint64_t cycles = 65536;  ///< cycles per "operation" (stream length)
  double activity = kDefaultActivity;  ///< combinational data activity
};

/// Evaluated costs of one design at one operating point.
struct CostReport {
  std::string label;
  double area_um2 = 0.0;
  double leakage_uw = 0.0;
  double dynamic_uw = 0.0;
  double power_uw = 0.0;   ///< leakage + dynamic
  double energy_pj = 0.0;  ///< power * cycles / clock

  /// Energy in nJ (paper Table IV convention).
  [[nodiscard]] double energy_nj() const { return energy_pj / 1000.0; }
};

/// Evaluates a netlist at the given operating point.
CostReport evaluate(const Netlist& netlist, const CostConfig& config = {});

/// Cost change from `before` to `after` at one operating point (after
/// minus before, fieldwise) — negative numbers are savings.  The program
/// optimizer (src/opt/) reports removed or shared correction hardware
/// this way.
CostReport evaluate_delta(const Netlist& before, const Netlist& after,
                          const CostConfig& config = {});

}  // namespace sc::hw
