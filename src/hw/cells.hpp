/// \file cells.hpp
/// Standard-cell library model for the hardware cost estimates.
///
/// The paper synthesizes its designs with Synopsys tools on a TSMC 65nm
/// library and reports area (um^2), power (uW), and energy (pJ) per design
/// (Tables III and IV).  We cannot run that flow, so this module models a
/// 65nm-class cell library: every cell has an area, a leakage power, and a
/// switching energy per clocked/toggled evaluation.  Design netlists
/// (designs.hpp) are expanded into cell counts and evaluated with
///     power  = sum(leakage) + activity * sum(switch_energy) * f_clk
///     energy = power * cycles / f_clk
///
/// Calibration: cell parameters are fitted so the five single-operator
/// designs of paper Table III land near the published numbers (the OR-max
/// area of 2.16 um^2 pins the OR2 cell exactly; the published energy/power
/// ratios imply an operating point of 2^16 cycles at 100 MHz, which is the
/// default used by the Table III bench).  The claims we must reproduce are
/// the *relative* factors (5.2x smaller, 11.6x / 3.0x more energy
/// efficient, 24% pipeline saving); those follow from the netlist structure
/// rather than the absolute calibration.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sc::hw {

/// Primitive cells the netlists are built from.
enum class Cell : std::uint8_t {
  kInv,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kMux2,
  kDff,       ///< D flip-flop (clocked every cycle)
  kDffEn,     ///< D flip-flop with clock-enable
  kHalfAdder,
  kFullAdder,
};
inline constexpr std::size_t kCellCount = 12;

/// Physical parameters of one cell.
struct CellParams {
  std::string_view name;
  double area_um2;          ///< placed area
  double leakage_uw;        ///< static power
  double switch_energy_fj;  ///< energy per evaluation at full activity
};

/// Library lookup.
const CellParams& cell_params(Cell cell);

/// Default signal activity of an SC data net: a Bernoulli(p) stream toggles
/// with probability 2p(1-p) <= 0.5 per cycle; p = 0.5 gives 0.5.
inline constexpr double kDefaultActivity = 0.5;

/// Cells whose switching is clock-driven (activity 1.0 regardless of data):
/// flip-flops burn clock energy every cycle.
bool is_clocked(Cell cell);

}  // namespace sc::hw
