#include "hw/cost.hpp"

namespace sc::hw {

CostReport evaluate(const Netlist& netlist, const CostConfig& config) {
  CostReport report;
  report.label = netlist.label();
  report.area_um2 = netlist.area_um2();

  double leakage_uw = 0.0;
  double switched_fj_per_cycle = 0.0;
  for (std::size_t i = 0; i < kCellCount; ++i) {
    const auto cell = static_cast<Cell>(i);
    const std::uint64_t count = netlist.count(cell);
    if (count == 0) continue;
    const CellParams& params = cell_params(cell);
    leakage_uw += static_cast<double>(count) * params.leakage_uw;
    const double activity = is_clocked(cell) ? 1.0 : config.activity;
    switched_fj_per_cycle +=
        static_cast<double>(count) * activity * params.switch_energy_fj;
  }

  report.leakage_uw = leakage_uw;
  // fJ/cycle * cycles/s = fJ/s = 1e-9 uW... careful with units:
  // 1 fJ/cycle at f Hz = f * 1e-15 J/s = f * 1e-15 W = f * 1e-9 uW.
  report.dynamic_uw = switched_fj_per_cycle * config.clock_hz * 1e-9;
  report.power_uw = report.leakage_uw + report.dynamic_uw;
  // uW * s = 1e-6 J = 1e6 pJ.
  const double seconds =
      static_cast<double>(config.cycles) / config.clock_hz;
  report.energy_pj = report.power_uw * seconds * 1e6;
  return report;
}

CostReport evaluate_delta(const Netlist& before, const Netlist& after,
                          const CostConfig& config) {
  const CostReport a = evaluate(before, config);
  const CostReport b = evaluate(after, config);
  CostReport delta;
  delta.label = "delta(" + before.label() + " -> " + after.label() + ")";
  delta.area_um2 = b.area_um2 - a.area_um2;
  delta.leakage_uw = b.leakage_uw - a.leakage_uw;
  delta.dynamic_uw = b.dynamic_uw - a.dynamic_uw;
  delta.power_uw = b.power_uw - a.power_uw;
  delta.energy_pj = b.energy_pj - a.energy_pj;
  return delta;
}

}  // namespace sc::hw
