#include "hw/cells.hpp"

#include <cassert>

namespace sc::hw {
namespace {

/// 65nm-class calibrated cell table.  Areas follow typical TSMC 65LP
/// standard-cell footprints (NAND2 = 1.44 um^2 track height); switching
/// energies are fitted to the paper's Table III power column at 100 MHz
/// with 0.5 data activity.
constexpr std::array<CellParams, kCellCount> kLibrary = {{
    {"INV", 0.72, 0.0010, 1.2},
    {"NAND2", 1.44, 0.0015, 2.0},
    {"NOR2", 1.44, 0.0015, 2.0},
    {"AND2", 2.16, 0.0020, 4.8},
    {"OR2", 2.16, 0.0020, 5.0},
    {"XOR2", 2.88, 0.0030, 5.6},
    {"XNOR2", 2.88, 0.0030, 5.6},
    {"MUX2", 3.60, 0.0030, 5.2},
    {"DFF", 10.08, 0.0080, 12.0},
    {"DFFE", 6.00, 0.0060, 3.0},
    {"HADD", 4.32, 0.0040, 7.0},
    {"FADD", 7.20, 0.0070, 18.0},
}};

}  // namespace

const CellParams& cell_params(Cell cell) {
  const auto index = static_cast<std::size_t>(cell);
  assert(index < kLibrary.size());
  return kLibrary[index];
}

bool is_clocked(Cell cell) { return cell == Cell::kDff || cell == Cell::kDffEn; }

}  // namespace sc::hw
