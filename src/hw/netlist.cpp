#include "hw/netlist.hpp"

#include <sstream>

namespace sc::hw {

std::uint64_t Netlist::total_cells() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts_) total += c;
  return total;
}

Netlist& Netlist::operator+=(const Netlist& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  return *this;
}

Netlist& Netlist::operator*=(std::uint64_t factor) {
  for (auto& c : counts_) c *= factor;
  return *this;
}

double Netlist::area_um2() const {
  double area = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    area += static_cast<double>(counts_[i]) *
            cell_params(static_cast<Cell>(i)).area_um2;
  }
  return area;
}

std::string Netlist::to_string() const {
  std::ostringstream os;
  if (!label_.empty()) os << label_ << ": ";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) os << " ";
    os << counts_[i] << "x" << cell_params(static_cast<Cell>(i)).name;
    first = false;
  }
  if (first) os << "(empty)";
  return os.str();
}

}  // namespace sc::hw
