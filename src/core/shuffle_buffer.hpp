/// \file shuffle_buffer.hpp
/// The paper's shuffle buffer (Fig. 4b): a small randomly addressed bit
/// memory that scrambles the temporal order of a stream.
///
/// Each cycle an auxiliary RNG draws r in [0, D]:
///   r <  D : emit buffer[r], store the incoming bit at slot r
///   r == D : pass the incoming bit straight through
/// Reordering bits never changes their count, so the stream value is
/// preserved except for bits resident in the buffer at stream end.  To
/// cancel that residual bias the buffer is initialized half 1s / half 0s
/// (paper §III-C): on average as many 1s leave the initial buffer as get
/// stuck in the final one.
///
/// Unlike an isolator (fixed delay, order preserved) the shuffle buffer
/// permutes bits across a window of roughly D cycles, which is what lets it
/// break correlation rather than just shift phase.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/pair_transform.hpp"
#include "rng/random_source.hpp"

namespace sc::core {

/// Randomly addressed bit buffer (single stream).
class ShuffleBuffer final : public StreamTransform {
 public:
  /// \param depth   number of storage slots D (>= 1)
  /// \param source  auxiliary address source; owned.  Its value is reduced
  ///                modulo (D+1), so any width >= ceil(log2(D+1)) works.
  ShuffleBuffer(std::size_t depth, rng::RandomSourcePtr source);

  bool step(bool in) override;
  void reset() override;
  /// 1s currently resident in the buffer.
  [[nodiscard]] unsigned saved_ones() const override;

  [[nodiscard]] std::size_t depth() const { return slots_.size(); }

  /// Result of one pure transition for a given address draw.
  struct Transition {
    std::uint64_t slots;
    bool out;
  };

  /// Pure step function for an already reduced address r in [0, depth]
  /// (r == depth is the pass-through slot), over the slot contents packed
  /// as a bitmask (slot i = bit i; depth <= 64).  Exposed for the
  /// table-driven kernels (src/kernel/).
  static Transition transition(std::uint64_t slots, std::size_t depth,
                               std::size_t r, bool in);

  /// Slot contents packed as a bitmask (depth <= 64 only).
  [[nodiscard]] std::uint64_t slots_mask() const;
  void set_slots_mask(std::uint64_t mask);

  /// The auxiliary address source (kernels draw from it directly so its
  /// sequence position stays shared with the bit-serial path).
  rng::RandomSource& source() { return *source_; }

 private:
  void initialize_slots();

  std::vector<char> slots_;  // char instead of bool for addressable slots
  rng::RandomSourcePtr source_;
};

}  // namespace sc::core
