/// \file decorrelator.hpp
/// The paper's decorrelator (Fig. 4a): two shuffle buffers with *different*
/// auxiliary RNGs, one per stream, driving SCC toward 0.
///
/// Because each stream's bits are permuted by an independent random
/// schedule, the joint overlap statistics approach the independence point
/// a = N pX pY while both values are preserved (up to buffer-resident
/// bits).  Deeper buffers scramble across longer windows and reach lower
/// |SCC|; decorrelators can also be composed in series (paper §III-C).

#pragma once

#include <cstddef>

#include "core/pair_transform.hpp"
#include "core/shuffle_buffer.hpp"
#include "rng/random_source.hpp"

namespace sc::core {

/// Two independent shuffle buffers as a pair transform.
class Decorrelator final : public PairTransform {
 public:
  /// \param depth     slots per shuffle buffer
  /// \param source_x  address source for the X buffer; owned
  /// \param source_y  address source for the Y buffer; owned (must differ
  ///                  from source_x in sequence, or the buffers shuffle in
  ///                  lockstep and correlation survives)
  Decorrelator(std::size_t depth, rng::RandomSourcePtr source_x,
               rng::RandomSourcePtr source_y);

  BitPair step(bool x, bool y) override;
  void reset() override;
  [[nodiscard]] unsigned saved_ones() const override;

  [[nodiscard]] std::size_t depth() const { return buffer_x_.depth(); }

  /// The underlying buffers, exposed for the table-driven kernel layer.
  ShuffleBuffer& buffer_x() { return buffer_x_; }
  ShuffleBuffer& buffer_y() { return buffer_y_; }

 private:
  ShuffleBuffer buffer_x_;
  ShuffleBuffer buffer_y_;
};

/// One link of the paper's series-composed decorrelator chain (§III-C):
/// X passes through untouched and Y is emitted as shuffle(X) — the Y
/// input is ignored, so the link is only meaningful when both inputs
/// carry the *same* stream (a same-source copy group, where it preserves
/// Y's value by construction).  Chaining k-1 links over k copies makes
/// copy j the composition of j independent shuffles of copy 0, so every
/// copy pair decorrelates with one single-buffer circuit per link
/// instead of the planner's pairwise two-buffer decorrelators — the
/// rewrite opt::make_chain_decorrelator_pass performs.
class DecorrelatorChainLink final : public PairTransform {
 public:
  /// \param depth   slots of the link's shuffle buffer
  /// \param source  address source; owned
  DecorrelatorChainLink(std::size_t depth, rng::RandomSourcePtr source);

  BitPair step(bool x, bool y) override;
  void reset() override;
  [[nodiscard]] unsigned saved_ones() const override;

  [[nodiscard]] std::size_t depth() const { return buffer_.depth(); }

  /// The underlying buffer, exposed for the table-driven kernel layer.
  ShuffleBuffer& buffer() { return buffer_; }

 private:
  ShuffleBuffer buffer_;
};

}  // namespace sc::core
