/// \file decorrelator.hpp
/// The paper's decorrelator (Fig. 4a): two shuffle buffers with *different*
/// auxiliary RNGs, one per stream, driving SCC toward 0.
///
/// Because each stream's bits are permuted by an independent random
/// schedule, the joint overlap statistics approach the independence point
/// a = N pX pY while both values are preserved (up to buffer-resident
/// bits).  Deeper buffers scramble across longer windows and reach lower
/// |SCC|; decorrelators can also be composed in series (paper §III-C).

#pragma once

#include <cstddef>

#include "core/pair_transform.hpp"
#include "core/shuffle_buffer.hpp"
#include "rng/random_source.hpp"

namespace sc::core {

/// Two independent shuffle buffers as a pair transform.
class Decorrelator final : public PairTransform {
 public:
  /// \param depth     slots per shuffle buffer
  /// \param source_x  address source for the X buffer; owned
  /// \param source_y  address source for the Y buffer; owned (must differ
  ///                  from source_x in sequence, or the buffers shuffle in
  ///                  lockstep and correlation survives)
  Decorrelator(std::size_t depth, rng::RandomSourcePtr source_x,
               rng::RandomSourcePtr source_y);

  BitPair step(bool x, bool y) override;
  void reset() override;
  unsigned saved_ones() const override;

  std::size_t depth() const { return buffer_x_.depth(); }

  /// The underlying buffers, exposed for the table-driven kernel layer.
  ShuffleBuffer& buffer_x() { return buffer_x_; }
  ShuffleBuffer& buffer_y() { return buffer_y_; }

 private:
  ShuffleBuffer buffer_x_;
  ShuffleBuffer buffer_y_;
};

}  // namespace sc::core
