#include "core/isolator.hpp"

#include <cassert>

namespace sc::core {

DelayLine::DelayLine(std::size_t delay, bool pad)
    : fifo_(delay, pad ? 1 : 0), pad_(pad) {}

bool DelayLine::step(bool in) {
  if (fifo_.empty()) return in;
  const bool out = fifo_[head_] != 0;
  fifo_[head_] = in ? 1 : 0;
  head_ = (head_ + 1) % fifo_.size();
  return out;
}

void DelayLine::reset() {
  for (auto& b : fifo_) b = pad_ ? 1 : 0;
  head_ = 0;
}

unsigned DelayLine::saved_ones() const {
  unsigned ones = 0;
  for (char b : fifo_) ones += static_cast<unsigned>(b);
  return ones;
}

IsolatorPair::IsolatorPair(std::size_t delay, bool pad) : line_(delay, pad) {}

BitPair IsolatorPair::step(bool x, bool y) {
  return BitPair{x, line_.step(y)};
}

void IsolatorPair::reset() { line_.reset(); }

}  // namespace sc::core
