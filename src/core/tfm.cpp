#include "core/tfm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sc::core {

TrackingForecastMemory::TrackingForecastMemory(Config config,
                                               rng::RandomSourcePtr source)
    : config_(config),
      source_(std::move(source)),
      scale_(std::int32_t{1} << config.precision) {
  assert(source_ != nullptr);
  assert(source_->width() == config_.precision);
  const double init = std::clamp(config_.initial, 0.0, 1.0);
  initial_ = static_cast<std::int32_t>(
      std::lround(init * static_cast<double>(scale_)));
  estimate_ = initial_;
}

bool TrackingForecastMemory::step(bool in) {
  estimate_ = next_estimate(estimate_, in, config_.shift, scale_);
  // Regenerate from the estimate with the aux RNG.
  return static_cast<std::int32_t>(source_->next()) < estimate_;
}

void TrackingForecastMemory::reset() {
  estimate_ = initial_;
  source_->reset();
}

double TrackingForecastMemory::estimate() const {
  return static_cast<double>(estimate_) / static_cast<double>(scale_);
}

TfmPair::TfmPair(TrackingForecastMemory::Config config,
                 rng::RandomSourcePtr source_x, rng::RandomSourcePtr source_y)
    : tfm_x_(config, std::move(source_x)),
      tfm_y_(config, std::move(source_y)) {}

BitPair TfmPair::step(bool x, bool y) {
  return BitPair{tfm_x_.step(x), tfm_y_.step(y)};
}

void TfmPair::reset() {
  tfm_x_.reset();
  tfm_y_.reset();
}

}  // namespace sc::core
