#include "core/synchronizer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace sc::core {

Synchronizer::Synchronizer(Config config) : config_(config) {
  assert(config_.depth >= 1);
  const int depth = static_cast<int>(config_.depth);
  config_.initial_credit =
      std::clamp(config_.initial_credit, -depth, depth);
  credit_ = config_.initial_credit;
}

void Synchronizer::reset() {
  credit_ = config_.initial_credit;
  remaining_ = 0;
}

unsigned Synchronizer::saved_ones() const {
  return static_cast<unsigned>(std::abs(credit_));
}

void Synchronizer::begin_stream(std::size_t length) {
  credit_ = config_.initial_credit;
  remaining_ = length;
}

BitPair Synchronizer::step(bool x, bool y) {
  const int depth = static_cast<int>(config_.depth);

  // Flush mode: once the saved bits could no longer drain in the remaining
  // cycles, stop saving and force-emit saved 1s on idle (0) cycles.
  // remaining_ == 0 means the stream length was never announced; flushing is
  // then disabled (the plain FSM semantics apply).
  const bool force =
      config_.flush && remaining_ != 0 &&
      static_cast<std::size_t>(std::abs(credit_)) >= remaining_;
  if (remaining_ != 0) --remaining_;

  if (force) {
    // A saved 1 (or the incoming 1 on the saturated side) is emitted every
    // cycle; the credit drains exactly on cycles where the input is 0.
    BitPair out{x, y};
    if (credit_ > 0) {
      out.x = true;
      if (!x) --credit_;
    } else if (credit_ < 0) {
      out.y = true;
      if (!y) ++credit_;
    }
    return out;
  }

  if (x == y) {
    return BitPair{x, y};  // already paired
  }
  if (x) {  // x = 1, y = 0
    if (credit_ < 0) {
      ++credit_;  // pair the incoming X 1 with a saved Y 1
      return BitPair{true, true};
    }
    if (credit_ < depth) {
      ++credit_;  // save the unpaired X 1
      return BitPair{false, false};
    }
    return BitPair{true, false};  // saturated: pass through
  }
  // x = 0, y = 1
  if (credit_ > 0) {
    --credit_;  // pair the incoming Y 1 with a saved X 1
    return BitPair{true, true};
  }
  if (credit_ > -depth) {
    --credit_;  // save the unpaired Y 1
    return BitPair{false, false};
  }
  return BitPair{false, true};  // saturated: pass through
}

}  // namespace sc::core
