#include "core/synchronizer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

namespace sc::core {

namespace {

/// Save depth as a non-negative int for credit clamping.  Depths beyond
/// INT_MAX saturate: a plain static_cast would yield a negative value
/// (and negating INT_MIN is UB), silently inverting the clamp range.
int credit_bound(unsigned depth) {
  return static_cast<int>(
      std::min<unsigned>(depth, std::numeric_limits<int>::max()));
}

}  // namespace

Synchronizer::Synchronizer(Config config) : config_(config) {
  assert(config_.depth >= 1);
  const int depth = credit_bound(config_.depth);
  config_.initial_credit =
      std::clamp(config_.initial_credit, -depth, depth);
  credit_ = config_.initial_credit;
}

void Synchronizer::reset() {
  credit_ = config_.initial_credit;
  remaining_ = 0;
  length_known_ = false;
}

unsigned Synchronizer::saved_ones() const {
  return static_cast<unsigned>(std::abs(credit_));
}

void Synchronizer::begin_stream(std::size_t length) {
  credit_ = config_.initial_credit;
  remaining_ = length;
  length_known_ = true;
}

void Synchronizer::set_state(const State& state) {
  const int depth = credit_bound(config_.depth);
  credit_ = std::clamp(state.credit, -depth, depth);
  remaining_ = state.remaining;
  length_known_ = state.length_known;
}

Synchronizer::Transition Synchronizer::transition(unsigned depth_bits,
                                                  int credit, bool x, bool y) {
  const int depth = credit_bound(depth_bits);
  if (x == y) {
    return {credit, x, y};  // already paired
  }
  if (x) {  // x = 1, y = 0
    if (credit < 0) {
      return {credit + 1, true, true};  // pair the X 1 with a saved Y 1
    }
    if (credit < depth) {
      return {credit + 1, false, false};  // save the unpaired X 1
    }
    return {credit, true, false};  // saturated: pass through
  }
  // x = 0, y = 1
  if (credit > 0) {
    return {credit - 1, true, true};  // pair the Y 1 with a saved X 1
  }
  if (credit > -depth) {
    return {credit - 1, false, false};  // save the unpaired Y 1
  }
  return {credit, false, true};  // saturated: pass through
}

BitPair Synchronizer::step(bool x, bool y) {
  // Flush mode: once the saved bits could no longer drain in the remaining
  // cycles, stop saving and force-emit saved 1s on idle (0) cycles.
  // length_known_ (not remaining_ == 0) gates flushing, so a stream driven
  // past its announced length keeps flush semantics instead of silently
  // reverting to the plain FSM; with no announced length flushing stays
  // disabled.
  const bool force =
      config_.flush && length_known_ &&
      static_cast<std::size_t>(std::abs(credit_)) >= remaining_;
  if (remaining_ != 0) --remaining_;

  if (force) {
    // A saved 1 (or the incoming 1 on the saturated side) is emitted every
    // cycle; the credit drains exactly on cycles where the input is 0.
    BitPair out{x, y};
    if (credit_ > 0) {
      out.x = true;
      if (!x) --credit_;
    } else if (credit_ < 0) {
      out.y = true;
      if (!y) ++credit_;
    }
    return out;
  }

  const Transition t = transition(config_.depth, credit_, x, y);
  credit_ = t.credit;
  return BitPair{t.out_x, t.out_y};
}

}  // namespace sc::core
