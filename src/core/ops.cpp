#include "core/ops.hpp"

#include "arith/divide.hpp"
#include "arith/gates.hpp"
#include "core/pair_transform.hpp"

namespace sc::core {

Bitstream sync_max(const Bitstream& x, const Bitstream& y,
                   Synchronizer::Config config) {
  Synchronizer sync(config);
  const sc::StreamPair synced = apply(sync, x, y);
  return arith::or_gate(synced.x, synced.y);
}

Bitstream sync_min(const Bitstream& x, const Bitstream& y,
                   Synchronizer::Config config) {
  Synchronizer sync(config);
  const sc::StreamPair synced = apply(sync, x, y);
  return arith::and_gate(synced.x, synced.y);
}

Bitstream desync_saturating_add(const Bitstream& x, const Bitstream& y,
                                Desynchronizer::Config config) {
  Desynchronizer desync(config);
  const sc::StreamPair split = apply(desync, x, y);
  return arith::or_gate(split.x, split.y);
}

Bitstream sync_subtract(const Bitstream& x, const Bitstream& y,
                        Synchronizer::Config config) {
  Synchronizer sync(config);
  const sc::StreamPair synced = apply(sync, x, y);
  return arith::xor_gate(synced.x, synced.y);
}

Bitstream sync_divide(const Bitstream& x, const Bitstream& y,
                      Synchronizer::Config config) {
  Synchronizer sync(config);
  const sc::StreamPair synced = apply(sync, x, y);
  return arith::divide(synced.x, synced.y);
}

sc::StreamPair compose_synchronizers(const Bitstream& x, const Bitstream& y,
                                     std::size_t stages,
                                     Synchronizer::Config config) {
  sc::StreamPair current{x, y};
  for (std::size_t s = 0; s < stages; ++s) {
    // Paper §III-B: preloading alternate stages with a saved bit offsets
    // the one-sided stuck-bit loss that would otherwise compound.
    Synchronizer::Config stage_config = config;
    if (stage_config.initial_credit == 0 && s % 2 == 1) {
      stage_config.initial_credit = (s % 4 == 1) ? 1 : -1;
    }
    Synchronizer sync(stage_config);
    current = apply(sync, current.x, current.y);
  }
  return current;
}

sc::StreamPair compose_desynchronizers(const Bitstream& x, const Bitstream& y,
                                       std::size_t stages,
                                       Desynchronizer::Config config) {
  sc::StreamPair current{x, y};
  for (std::size_t s = 0; s < stages; ++s) {
    // Alternate the donor side so residual bias splits evenly across X/Y.
    Desynchronizer::Config stage_config = config;
    stage_config.prefer_x_first = (s % 2 == 0) == config.prefer_x_first;
    Desynchronizer desync(stage_config);
    current = apply(desync, current.x, current.y);
  }
  return current;
}

}  // namespace sc::core
