/// \file isolator.hpp
/// Isolator decorrelation baseline, Ting & Hayes ICCD 2016 (paper ref [10]).
///
/// An isolator is a chain of D flip-flops inserted into one stream: it
/// delays the stream by a fixed number of cycles without reordering bits.
/// Against a second, undelayed stream the phase shift perturbs the overlap
/// statistics, which *sometimes* lowers |SCC| - but because relative bit
/// order is preserved, the effect is erratic: for low-discrepancy streams a
/// one-cycle shift can even flip SCC from +1 toward -1 (paper Table II shows
/// VDC/VDC going from +0.992 to -0.637).  This limitation is the paper's
/// motivation for the shuffle-buffer decorrelator.

#pragma once

#include <cstddef>
#include <vector>

#include "core/pair_transform.hpp"

namespace sc::core {

/// Fixed delay line on a single stream (D flip-flops initialized to `pad`).
class DelayLine final : public StreamTransform {
 public:
  explicit DelayLine(std::size_t delay, bool pad = false);

  bool step(bool in) override;
  void reset() override;
  [[nodiscard]] unsigned saved_ones() const override;

  [[nodiscard]] std::size_t delay() const { return fifo_.size(); }

 private:
  std::vector<char> fifo_;  // fifo_[0] is the next bit to emit
  std::size_t head_ = 0;
  bool pad_;
};

/// Isolator insertion on a stream pair: X passes through, Y is delayed by
/// `delay` flip-flops (the paper's "isolator insertion" Table II row uses
/// delay = 1).
class IsolatorPair final : public PairTransform {
 public:
  explicit IsolatorPair(std::size_t delay = 1, bool pad = false);

  BitPair step(bool x, bool y) override;
  void reset() override;
  [[nodiscard]] unsigned saved_ones() const override { return line_.saved_ones(); }

  [[nodiscard]] std::size_t delay() const { return line_.delay(); }

 private:
  DelayLine line_;
};

}  // namespace sc::core
