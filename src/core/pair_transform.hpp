/// \file pair_transform.hpp
/// Per-cycle interfaces for correlation manipulating circuits.
///
/// All of the paper's circuits are small sequential machines that consume
/// one bit (or one bit pair) per clock and emit one bit (pair) per clock
/// with zero latency.  PairTransform is the two-stream interface
/// (synchronizer, desynchronizer, decorrelator, isolator pair, TFM pair);
/// StreamTransform is the single-stream interface (shuffle buffer, delay
/// line, single TFM).
///
/// Whole-stream helpers `apply(...)` run a transform over packed bitstreams
/// and are the forms tests and benchmarks use; the sim module wraps the same
/// objects as cycle-level circuit elements.

#pragma once

#include <cassert>
#include <cstddef>
#include <utility>

#include "bitstream/bitstream.hpp"
#include "bitstream/synthesis.hpp"

namespace sc::core {

/// One output bit pair per cycle.
struct BitPair {
  bool x = false;
  bool y = false;
};

/// Stateful transform of a pair of streams, one bit pair per cycle.
class PairTransform {
 public:
  virtual ~PairTransform() = default;

  /// Consumes the cycle's input bits, produces the cycle's output bits.
  virtual BitPair step(bool x, bool y) = 0;

  /// Returns to the initial state.
  virtual void reset() = 0;

  /// Number of 1-bits currently held inside the transform (bits consumed
  /// but not yet re-emitted).  Used to reason about end-of-stream bias:
  /// value deviation of each output stream is bounded by saved_ones()/N.
  [[nodiscard]] virtual unsigned saved_ones() const { return 0; }

  /// Informs the transform of the total stream length before a run.
  /// Transforms with end-of-stream flush behaviour (synchronizer /
  /// desynchronizer with Config::flush) use it; others ignore it.
  virtual void begin_stream(std::size_t /*length*/) {}
};

/// Stateful transform of a single stream, one bit per cycle.
class StreamTransform {
 public:
  virtual ~StreamTransform() = default;
  virtual bool step(bool in) = 0;
  virtual void reset() = 0;
  [[nodiscard]] virtual unsigned saved_ones() const { return 0; }
  virtual void begin_stream(std::size_t /*length*/) {}
};

/// Runs a pair transform over two equal-length streams.
/// Calls begin_stream(), then steps every cycle.  Does not reset first.
inline sc::StreamPair apply(PairTransform& transform, const Bitstream& x,
                            const Bitstream& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  sc::StreamPair out{Bitstream(n), Bitstream(n)};
  transform.begin_stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BitPair bits = transform.step(x.get(i), y.get(i));
    if (bits.x) out.x.set(i, true);
    if (bits.y) out.y.set(i, true);
  }
  return out;
}

/// Runs a single-stream transform over a stream.
inline Bitstream apply(StreamTransform& transform, const Bitstream& x) {
  const std::size_t n = x.size();
  Bitstream out(n);
  transform.begin_stream(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (transform.step(x.get(i))) out.set(i, true);
  }
  return out;
}

inline sc::StreamPair apply(PairTransform& transform,
                            const sc::StreamPair& in) {
  return apply(transform, in.x, in.y);
}

}  // namespace sc::core
