#include "core/desynchronizer.hpp"

#include <algorithm>
#include <cassert>

namespace sc::core {

Desynchronizer::Desynchronizer(Config config) : config_(config) {
  assert(config_.depth >= 1);
  save_from_x_ = config_.prefer_x_first;
}

void Desynchronizer::reset() {
  saved_x_ = 0;
  saved_y_ = 0;
  save_from_x_ = config_.prefer_x_first;
  remaining_ = 0;
  length_known_ = false;
}

void Desynchronizer::begin_stream(std::size_t length) {
  saved_x_ = 0;
  saved_y_ = 0;
  save_from_x_ = config_.prefer_x_first;
  remaining_ = length;
  length_known_ = true;
}

void Desynchronizer::set_state(const State& state) {
  // Clamped like Synchronizer::set_state: a release build must not accept
  // counters that break saved_x + saved_y <= depth (the kernel layer
  // derives table indices from them).
  saved_x_ = std::min(state.saved_x, config_.depth);
  saved_y_ = std::min(state.saved_y, config_.depth - saved_x_);
  save_from_x_ = state.save_from_x;
  remaining_ = state.remaining;
  length_known_ = state.length_known;
}

Desynchronizer::Transition Desynchronizer::transition(unsigned depth,
                                                      unsigned saved_x,
                                                      unsigned saved_y,
                                                      bool save_from_x, bool x,
                                                      bool y) {
  if (x != y) {
    return {saved_x, saved_y, save_from_x, x, y};  // already unpaired
  }
  if (x) {  // both 1: try to unpair by withholding one side's 1
    if (saved_x + saved_y < depth) {
      if (save_from_x) {
        return {saved_x + 1, saved_y, false, false, true};
      }
      return {saved_x, saved_y + 1, true, true, false};
    }
    return {saved_x, saved_y, save_from_x, true, true};  // saturated
  }
  // both 0: fill the gap with a saved 1 if available
  if (saved_x == 0 && saved_y == 0) {
    return {saved_x, saved_y, save_from_x, false, false};
  }
  // Emit from the fuller side; on a tie, from the side saved longest ago
  // (the opposite of the next donor).
  const bool emit_x = saved_x != saved_y ? (saved_x > saved_y) : !save_from_x;
  if (emit_x) {
    return {saved_x - 1, saved_y, save_from_x, true, false};
  }
  return {saved_x, saved_y - 1, save_from_x, false, true};
}

BitPair Desynchronizer::step(bool x, bool y) {
  // length_known_ (not remaining_ == 0) gates flushing — see Synchronizer.
  const bool force = config_.flush && length_known_ &&
                     static_cast<std::size_t>(saved_x_ + saved_y_) >= remaining_;
  if (remaining_ != 0) --remaining_;

  if (force) {
    // Emit saved 1s into any 0 slot; stop saving new bits.
    BitPair out{x, y};
    if (!out.x && saved_x_ > 0) {
      out.x = true;
      --saved_x_;
    }
    if (!out.y && saved_y_ > 0) {
      out.y = true;
      --saved_y_;
    }
    return out;
  }

  const Transition t =
      transition(config_.depth, saved_x_, saved_y_, save_from_x_, x, y);
  saved_x_ = t.saved_x;
  saved_y_ = t.saved_y;
  save_from_x_ = t.save_from_x;
  return BitPair{t.out_x, t.out_y};
}

}  // namespace sc::core
