#include "core/desynchronizer.hpp"

#include <cassert>

namespace sc::core {

Desynchronizer::Desynchronizer(Config config) : config_(config) {
  assert(config_.depth >= 1);
  save_from_x_ = config_.prefer_x_first;
}

void Desynchronizer::reset() {
  saved_x_ = 0;
  saved_y_ = 0;
  save_from_x_ = config_.prefer_x_first;
  remaining_ = 0;
}

void Desynchronizer::begin_stream(std::size_t length) {
  saved_x_ = 0;
  saved_y_ = 0;
  save_from_x_ = config_.prefer_x_first;
  remaining_ = length;
}

BitPair Desynchronizer::step(bool x, bool y) {
  const unsigned depth = config_.depth;

  const bool force = config_.flush && remaining_ != 0 &&
                     static_cast<std::size_t>(saved_x_ + saved_y_) >= remaining_;
  if (remaining_ != 0) --remaining_;

  if (force) {
    // Emit saved 1s into any 0 slot; stop saving new bits.
    BitPair out{x, y};
    if (!out.x && saved_x_ > 0) {
      out.x = true;
      --saved_x_;
    }
    if (!out.y && saved_y_ > 0) {
      out.y = true;
      --saved_y_;
    }
    return out;
  }

  if (x != y) {
    return BitPair{x, y};  // already unpaired
  }
  if (x) {  // both 1: try to unpair by withholding one side's 1
    if (saved_x_ + saved_y_ < depth) {
      if (save_from_x_) {
        ++saved_x_;
        save_from_x_ = false;
        return BitPair{false, true};
      }
      ++saved_y_;
      save_from_x_ = true;
      return BitPair{true, false};
    }
    return BitPair{true, true};  // saturated: pass through
  }
  // both 0: fill the gap with a saved 1 if available
  if (saved_x_ == 0 && saved_y_ == 0) {
    return BitPair{false, false};
  }
  // Emit from the fuller side; on a tie, from the side saved longest ago
  // (the opposite of the next donor).
  const bool emit_x =
      saved_x_ != saved_y_ ? (saved_x_ > saved_y_) : !save_from_x_;
  if (emit_x) {
    --saved_x_;
    return BitPair{true, false};
  }
  --saved_y_;
  return BitPair{false, true};
}

}  // namespace sc::core
