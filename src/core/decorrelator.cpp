#include "core/decorrelator.hpp"

namespace sc::core {

Decorrelator::Decorrelator(std::size_t depth, rng::RandomSourcePtr source_x,
                           rng::RandomSourcePtr source_y)
    : buffer_x_(depth, std::move(source_x)),
      buffer_y_(depth, std::move(source_y)) {}

BitPair Decorrelator::step(bool x, bool y) {
  return BitPair{buffer_x_.step(x), buffer_y_.step(y)};
}

void Decorrelator::reset() {
  buffer_x_.reset();
  buffer_y_.reset();
}

unsigned Decorrelator::saved_ones() const {
  return buffer_x_.saved_ones() + buffer_y_.saved_ones();
}

DecorrelatorChainLink::DecorrelatorChainLink(std::size_t depth,
                                             rng::RandomSourcePtr source)
    : buffer_(depth, std::move(source)) {}

BitPair DecorrelatorChainLink::step(bool x, bool /*y*/) {
  return BitPair{x, buffer_.step(x)};
}

void DecorrelatorChainLink::reset() { buffer_.reset(); }

unsigned DecorrelatorChainLink::saved_ones() const {
  return buffer_.saved_ones();
}

}  // namespace sc::core
