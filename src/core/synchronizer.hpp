/// \file synchronizer.hpp
/// The paper's synchronizer (Fig. 3a): increases positive correlation
/// between two streams while preserving each stream's value.
///
/// Principle (paper §III-A): pair up 1s (and 0s) across the two inputs as
/// often as possible.  When the inputs agree they pass through.  When they
/// disagree, the lone 1 is "saved" in the FSM and a (0,0) pair is emitted;
/// when the opposite disagreement later arrives, the saved 1 is paired with
/// it and a (1,1) pair is emitted.
///
/// Generalization (paper §III-B): the FSM state is a signed credit
/// c in [-D, +D] where c > 0 counts saved unpaired X 1s and c < 0 counts
/// saved unpaired Y 1s; D is the *save depth*.  D = 1 reproduces the
/// three-state FSM of Fig. 3a exactly (S1 <=> c=+1, S0 <=> c=0,
/// S2 <=> c=-1).  When the credit saturates, disagreeing bits pass through
/// unmodified.
///
/// Saved bits still inside the FSM when the stream ends are lost, giving
/// each output a negative bias bounded by D/N.  The optional *flush* mode
/// (paper §III-B) tracks the remaining stream length and force-emits saved
/// bits (unpaired) when they could otherwise no longer drain, reducing the
/// bias to zero at the cost of slightly weaker final correlation and the
/// hardware to track the offset.

#pragma once

#include <cstddef>

#include "core/pair_transform.hpp"

namespace sc::core {

/// Synchronizer FSM with save depth D (paper Fig. 3a for D = 1).
class Synchronizer final : public PairTransform {
 public:
  struct Config {
    /// Maximum number of unpaired bits saved per side (D >= 1).
    unsigned depth = 1;
    /// Enable end-of-stream flush (requires begin_stream() / apply()).
    bool flush = false;
    /// Starting credit (paper §III-B: "start with a saved X or Y bit by
    /// adjusting the initial state").  A preloaded +1 emits one extra X 1
    /// over the stream, offsetting the average stuck-bit loss when
    /// composing stages.  Clamped to [-depth, depth].
    int initial_credit = 0;
  };

  /// Result of one pure (non-flush) transition.
  struct Transition {
    int credit;
    bool out_x;
    bool out_y;
  };

  /// Pure non-flush step function: (credit, x, y) -> (credit', output pair).
  /// step() is this plus the flush bookkeeping; the table-driven kernels
  /// (src/kernel/) enumerate it over all credits and input pairs to build
  /// their transition tables.
  static Transition transition(unsigned depth, int credit, bool x, bool y);

  /// Complete mutable FSM state, exposed so external drivers (the kernel
  /// layer) can run the transition function themselves and write the
  /// advanced state back.
  struct State {
    int credit = 0;
    std::size_t remaining = 0;  ///< cycles left of the announced length
    bool length_known = false;  ///< begin_stream() was called this run
  };

  Synchronizer() : Synchronizer(Config{}) {}
  explicit Synchronizer(Config config);

  BitPair step(bool x, bool y) override;
  void reset() override;
  [[nodiscard]] unsigned saved_ones() const override;
  void begin_stream(std::size_t length) override;

  const Config& config() const { return config_; }
  /// Signed saved-bit credit: > 0 means saved X 1s, < 0 means saved Y 1s.
  [[nodiscard]] int credit() const { return credit_; }

  [[nodiscard]] State state() const { return {credit_, remaining_, length_known_}; }
  /// Overwrites the FSM state (credit is clamped to [-depth, depth]).
  void set_state(const State& state);

 private:
  Config config_;
  int credit_ = 0;
  std::size_t remaining_ = 0;  // cycles left in the stream (flush mode)
  bool length_known_ = false;  // distinguishes "no length announced" from
                               // "announced length fully consumed"
};

}  // namespace sc::core
