/// \file tfm.hpp
/// Tracking forecast memory (TFM) baseline, Tehrani et al. ICASSP 2009
/// (paper ref [11]).
///
/// A TFM tracks the running probability of its input stream with a
/// fixed-point exponential moving average,
///     P(t) = P(t-1) + beta * (b(t) - P(t-1)),   beta = 2^-shift,
/// and *regenerates* the output bit each cycle by comparing the estimate
/// against an auxiliary RNG.  Because the output randomness comes from the
/// aux RNG rather than the input, a TFM re-randomizes (decorrelates) a
/// stream - the role edge memories / TFMs play in stochastic LDPC decoders.
///
/// The paper evaluates TFMs as a decorrelation alternative (Table II) and
/// finds them weaker than the shuffle-buffer decorrelator and biased when
/// the estimate lags the input (the EMA is a low-pass filter: it reacts
/// slowly and its regeneration noise floor depends on the aux RNG quality).
/// TFMs also carry binary-encoded arithmetic (an adder and register),
/// making them larger than the proposed decorrelator.

#pragma once

#include <cstdint>

#include "core/pair_transform.hpp"
#include "rng/random_source.hpp"

namespace sc::core {

/// Single-stream tracking forecast memory.
class TrackingForecastMemory final : public StreamTransform {
 public:
  struct Config {
    /// Fixed-point fraction bits of the probability estimate; the estimate
    /// lives in [0, 2^precision].
    unsigned precision = 8;
    /// EMA shift: beta = 2^-shift.
    unsigned shift = 3;
    /// Initial estimate as a fraction of full scale (0.5 = mid-scale).
    double initial = 0.5;
  };

  /// \param source aux RNG for output regeneration; owned.  Its width must
  ///               equal config.precision.
  TrackingForecastMemory(Config config, rng::RandomSourcePtr source);

  bool step(bool in) override;
  void reset() override;

  /// Current probability estimate in [0, 1].
  [[nodiscard]] double estimate() const;

  /// Pure EMA update, exposed for the table-driven kernels (src/kernel/):
  /// the estimate after consuming `in`, before output regeneration.
  static std::int32_t next_estimate(std::int32_t estimate, bool in,
                                    unsigned shift, std::int32_t scale) {
    const std::int32_t target = in ? scale : 0;
    // C++20 guarantees arithmetic right shift of negatives; (target -
    // estimate) stays in [-scale, scale] regardless.
    return estimate + ((target - estimate) >> shift);
  }

  const Config& config() const { return config_; }
  /// Fixed-point estimate in [0, 2^precision] (exact kernel state).
  [[nodiscard]] std::int32_t estimate_fixed() const { return estimate_; }
  void set_estimate_fixed(std::int32_t estimate) { estimate_ = estimate; }
  [[nodiscard]] std::int32_t scale() const { return scale_; }
  /// The regeneration RNG (kernels draw from it directly).
  rng::RandomSource& aux_source() { return *source_; }

 private:
  Config config_;
  rng::RandomSourcePtr source_;
  std::int32_t scale_;     // 2^precision
  std::int32_t initial_;   // initial estimate in fixed point
  std::int32_t estimate_;  // current estimate in fixed point
};

/// Pair of independent TFMs as a decorrelating pair transform
/// (the paper's Table II "Tracking Forecast Memory" row).
class TfmPair final : public PairTransform {
 public:
  TfmPair(TrackingForecastMemory::Config config, rng::RandomSourcePtr source_x,
          rng::RandomSourcePtr source_y);

  BitPair step(bool x, bool y) override;
  void reset() override;

  /// The underlying TFMs, exposed for the table-driven kernel layer.
  TrackingForecastMemory& tfm_x() { return tfm_x_; }
  TrackingForecastMemory& tfm_y() { return tfm_y_; }

 private:
  TrackingForecastMemory tfm_x_;
  TrackingForecastMemory tfm_y_;
};

}  // namespace sc::core
