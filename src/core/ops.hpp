/// \file ops.hpp
/// The paper's improved SC operators (Fig. 5) and composition helpers.
///
/// * sync_max  = synchronizer + OR gate  (Fig. 5a)
/// * sync_min  = synchronizer + AND gate (Fig. 5b)
/// * desync_saturating_add = desynchronizer + OR gate (Fig. 5c)
///
/// The synchronizer drives its two outputs toward SCC = +1, where OR
/// computes max and AND computes min exactly; the desynchronizer drives
/// SCC toward -1, where OR computes the saturating sum min(1, pX+pY)
/// exactly.  Accuracy improves with save depth D at the cost of a larger
/// FSM (paper Table III trade-off).
///
/// Serial composition (paper §III-B): chaining k depth-1 stages also
/// strengthens the induced correlation, with diminishing returns; the
/// compose_* helpers implement that alternative.

#pragma once

#include <cstddef>

#include "bitstream/bitstream.hpp"
#include "bitstream/synthesis.hpp"
#include "core/desynchronizer.hpp"
#include "core/synchronizer.hpp"

namespace sc::core {

/// max(pX, pY) via synchronizer + OR (paper Fig. 5a).
Bitstream sync_max(const Bitstream& x, const Bitstream& y,
                   Synchronizer::Config config = {});

/// min(pX, pY) via synchronizer + AND (paper Fig. 5b).
Bitstream sync_min(const Bitstream& x, const Bitstream& y,
                   Synchronizer::Config config = {});

/// min(1, pX + pY) via desynchronizer + OR (paper Fig. 5c).
Bitstream desync_saturating_add(const Bitstream& x, const Bitstream& y,
                                Desynchronizer::Config config = {});

/// |pX - pY| via synchronizer + XOR: the same recipe as sync-max applied to
/// the Fig. 2c subtractor, making absolute difference work on operands of
/// *any* correlation.  (This is exactly what the §IV pipeline inserts in
/// front of the Roberts-cross XORs.)
Bitstream sync_subtract(const Bitstream& x, const Bitstream& y,
                        Synchronizer::Config config = {});

/// pX / pY via synchronizer + CORDIV: the Fig. 2e divider requires
/// positively correlated operands; synchronizing first lifts that
/// requirement.  Accurate for pX <= pY (quotient in [0, 1]).
Bitstream sync_divide(const Bitstream& x, const Bitstream& y,
                      Synchronizer::Config config = {});

/// Runs `stages` depth-1 synchronizers in series (paper §III-B).
/// Stages alternate their initial saved-bit preference to keep residual
/// biases from compounding in one direction.
sc::StreamPair compose_synchronizers(const Bitstream& x, const Bitstream& y,
                                     std::size_t stages,
                                     Synchronizer::Config config = {});

/// Runs `stages` depth-1 desynchronizers in series (paper §III-B).
sc::StreamPair compose_desynchronizers(const Bitstream& x, const Bitstream& y,
                                       std::size_t stages,
                                       Desynchronizer::Config config = {});

}  // namespace sc::core
