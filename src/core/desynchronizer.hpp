/// \file desynchronizer.hpp
/// The paper's desynchronizer (Fig. 3b): increases *negative* correlation
/// between two streams while preserving each stream's value.
///
/// Principle (paper §III-A): deliberately un-pair bits.  When both inputs
/// are 1, one of the two 1s is saved in the FSM and a (1,0)/(0,1) pair is
/// emitted; when both inputs are later 0, a saved 1 is emitted to fill the
/// gap.  Differing inputs are already unpaired and pass through.
///
/// At save depth D = 1 this is exactly the paper's four-state cycle:
///   S0 (empty, next save from X) --(1,1): emit (0,1), save X--> S1
///   S1 (X 1 saved)               --(0,0): emit (1,0)---------> S3
///   S3 (empty, next save from Y) --(1,1): emit (1,0), save Y--> S2
///   S2 (Y 1 saved)               --(0,0): emit (0,1)---------> S0
/// with pass-through self-loops on X^Y = 1 everywhere, (0,0) self-loops on
/// the empty states and (1,1) self-loops on the full states.  Alternating
/// which side donates the saved bit keeps the two output values balanced.
///
/// The generalization to depth D keeps per-side saved-1 counters (total at
/// most D) and the same alternation rule.  Saved bits remaining at stream
/// end bias the *donor* stream low by up to D/N; optional flush mode
/// force-emits them near the end exactly as in the synchronizer.

#pragma once

#include <cstddef>

#include "core/pair_transform.hpp"

namespace sc::core {

/// Desynchronizer FSM with save depth D (paper Fig. 3b for D = 1).
class Desynchronizer final : public PairTransform {
 public:
  struct Config {
    /// Maximum number of saved 1s held at once (D >= 1, across both sides).
    unsigned depth = 1;
    /// Enable end-of-stream flush (requires begin_stream() / apply()).
    bool flush = false;
    /// Which side donates the first saved bit (paper §III-B initial-state
    /// adjustment; alternating it across composed stages balances the
    /// residual bias between the two outputs).
    bool prefer_x_first = true;
  };

  /// Result of one pure (non-flush) transition.
  struct Transition {
    unsigned saved_x;
    unsigned saved_y;
    bool save_from_x;
    bool out_x;
    bool out_y;
  };

  /// Pure non-flush step function, exposed for the table-driven kernels
  /// (src/kernel/): maps (saved counters, alternation flag, input pair) to
  /// the successor state and output pair.
  static Transition transition(unsigned depth, unsigned saved_x,
                               unsigned saved_y, bool save_from_x, bool x,
                               bool y);

  /// Complete mutable FSM state for external (kernel-layer) drivers.
  struct State {
    unsigned saved_x = 0;
    unsigned saved_y = 0;
    bool save_from_x = true;
    std::size_t remaining = 0;  ///< cycles left of the announced length
    bool length_known = false;  ///< begin_stream() was called this run
  };

  Desynchronizer() : Desynchronizer(Config{}) {}
  explicit Desynchronizer(Config config);

  BitPair step(bool x, bool y) override;
  void reset() override;
  [[nodiscard]] unsigned saved_ones() const override { return saved_x_ + saved_y_; }
  void begin_stream(std::size_t length) override;

  const Config& config() const { return config_; }
  [[nodiscard]] unsigned saved_x() const { return saved_x_; }
  [[nodiscard]] unsigned saved_y() const { return saved_y_; }

  [[nodiscard]] State state() const {
    return {saved_x_, saved_y_, save_from_x_, remaining_, length_known_};
  }
  void set_state(const State& state);

 private:
  Config config_;
  unsigned saved_x_ = 0;   // 1s withheld from output X
  unsigned saved_y_ = 0;   // 1s withheld from output Y
  bool save_from_x_ = true;  // alternation: which side donates next
  std::size_t remaining_ = 0;
  bool length_known_ = false;  // distinguishes "no length announced" from
                               // "announced length fully consumed"
};

}  // namespace sc::core
