#include "core/shuffle_buffer.hpp"

#include <cassert>

namespace sc::core {

ShuffleBuffer::ShuffleBuffer(std::size_t depth, rng::RandomSourcePtr source)
    : slots_(depth), source_(std::move(source)) {
  assert(depth >= 1);
  assert(source_ != nullptr);
  initialize_slots();
}

void ShuffleBuffer::initialize_slots() {
  // Half 1s, half 0s (1s in the low slots; the addressing is random so the
  // placement does not matter).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i] = (i < slots_.size() / 2) ? 1 : 0;
  }
}

bool ShuffleBuffer::step(bool in) {
  const std::size_t r =
      static_cast<std::size_t>(source_->next()) % (slots_.size() + 1);
  if (r == slots_.size()) {
    return in;  // pass-through slot
  }
  const bool out = slots_[r] != 0;
  slots_[r] = in ? 1 : 0;
  return out;
}

void ShuffleBuffer::reset() {
  source_->reset();
  initialize_slots();
}

unsigned ShuffleBuffer::saved_ones() const {
  unsigned ones = 0;
  for (char s : slots_) ones += static_cast<unsigned>(s);
  return ones;
}

}  // namespace sc::core
