#include "core/shuffle_buffer.hpp"

#include <cassert>

namespace sc::core {

ShuffleBuffer::ShuffleBuffer(std::size_t depth, rng::RandomSourcePtr source)
    : slots_(depth), source_(std::move(source)) {
  assert(depth >= 1);
  assert(source_ != nullptr);
  initialize_slots();
}

void ShuffleBuffer::initialize_slots() {
  // Half 1s, half 0s (1s in the low slots; the addressing is random so the
  // placement does not matter).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i] = (i < slots_.size() / 2) ? 1 : 0;
  }
}

bool ShuffleBuffer::step(bool in) {
  const std::size_t r =
      static_cast<std::size_t>(source_->next()) % (slots_.size() + 1);
  if (r == slots_.size()) {
    return in;  // pass-through slot
  }
  const bool out = slots_[r] != 0;
  slots_[r] = in ? 1 : 0;
  return out;
}

void ShuffleBuffer::reset() {
  source_->reset();
  initialize_slots();
}

unsigned ShuffleBuffer::saved_ones() const {
  unsigned ones = 0;
  for (char s : slots_) ones += static_cast<unsigned>(s);
  return ones;
}

ShuffleBuffer::Transition ShuffleBuffer::transition(std::uint64_t slots,
                                                    std::size_t depth,
                                                    std::size_t r, bool in) {
  assert(r <= depth);
  if (r == depth) {
    return {slots, in};  // pass-through slot
  }
  const bool out = (slots >> r) & 1u;
  slots = (slots & ~(std::uint64_t{1} << r)) |
          (static_cast<std::uint64_t>(in) << r);
  return {slots, out};
}

std::uint64_t ShuffleBuffer::slots_mask() const {
  assert(slots_.size() <= 64);
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] != 0) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

void ShuffleBuffer::set_slots_mask(std::uint64_t mask) {
  assert(slots_.size() <= 64);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i] = (mask >> i) & 1u ? 1 : 0;
  }
}

}  // namespace sc::core
