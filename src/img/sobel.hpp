/// \file sobel.hpp
/// SC Sobel edge detector - an application built from *all three* of the
/// paper's improved operators.
///
/// Per pixel, the Sobel magnitude is approximated as
///     |Gx|/4 + |Gy|/4 saturated at 1, with
///     Gx/4 = right-column weighted mean - left-column weighted mean
///     Gy/4 = bottom-row weighted mean  - top-row weighted mean
/// (weights {1,2,1}/4 from a shared weighted sampler).  The SC datapath:
///
///   column/row means: 3-to-1 MUX trees           (scaled add)
///   |difference|:     synchronizer + XOR         (paper Fig. 5 recipe)
///   saturating sum:   desynchronizer + OR        (paper Fig. 5c)
///
/// The no-manipulation variant drops both manipulators (bare XOR / OR),
/// which is measurably wrong - the same §IV story on a second kernel, this
/// time exercising the desynchronizer in anger.

#pragma once

#include <cstdint>

#include "hw/netlist.hpp"
#include "img/image.hpp"

namespace sc::img {

/// Floating-point reference of the SC-friendly Sobel formulation above.
Image sobel_reference(const Image& input);

struct SobelConfig {
  std::size_t stream_length = 256;
  unsigned sng_width = 8;
  unsigned input_banks = 8;
  unsigned sync_depth = 4;
  unsigned desync_depth = 4;
  std::uint32_t seed = 31;
  bool manipulate = true;  ///< false = bare XOR/OR (no-manipulation design)
};

struct SobelResult {
  Image output;
  Image reference;
  double error = 0.0;          ///< mean abs pixel error vs reference
  hw::Netlist manipulators;    ///< inserted manipulation hardware per pixel
};

/// Runs the SC Sobel detector over the image.
SobelResult run_sc_sobel(const Image& input, const SobelConfig& config = {});

}  // namespace sc::img
