#include "img/sobel.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "bitstream/encoding.hpp"
#include "convert/weighted_sampler.hpp"
#include "core/desynchronizer.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "hw/designs.hpp"
#include "rng/lfsr.hpp"

namespace sc::img {
namespace {

double column_mean(const Image& img, std::ptrdiff_t x, std::ptrdiff_t y,
                   std::ptrdiff_t dx) {
  return (img.at_clamped(x + dx, y - 1) + 2.0 * img.at_clamped(x + dx, y) +
          img.at_clamped(x + dx, y + 1)) /
         4.0;
}

double row_mean(const Image& img, std::ptrdiff_t x, std::ptrdiff_t y,
                std::ptrdiff_t dy) {
  return (img.at_clamped(x - 1, y + dy) + 2.0 * img.at_clamped(x, y + dy) +
          img.at_clamped(x + 1, y + dy)) /
         4.0;
}

}  // namespace

Image sobel_reference(const Image& input) {
  Image out(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      const auto ix = static_cast<std::ptrdiff_t>(x);
      const auto iy = static_cast<std::ptrdiff_t>(y);
      const double gx =
          std::abs(column_mean(input, ix, iy, +1) -
                   column_mean(input, ix, iy, -1));
      const double gy =
          std::abs(row_mean(input, ix, iy, +1) - row_mean(input, ix, iy, -1));
      out.at(x, y) = std::min(1.0, gx + gy);
    }
  }
  return out;
}

SobelResult run_sc_sobel(const Image& input, const SobelConfig& config) {
  assert(!input.empty());
  const std::size_t n = config.stream_length;
  const auto natural = static_cast<std::uint32_t>(1u << config.sng_width);

  SobelResult result;
  result.reference = sobel_reference(input);
  result.output = Image(input.width(), input.height());

  // Shared infrastructure (free-running, as in the tiled accelerator).
  std::vector<rng::Lfsr> banks;
  for (unsigned b = 0; b < config.input_banks; ++b) {
    banks.emplace_back(config.sng_width, config.seed + 5 * (b + 1));
  }
  convert::WeightedSampler sampler(
      {1, 2, 1}, std::make_unique<rng::Lfsr>(config.sng_width,
                                             config.seed + 977));

  std::vector<std::vector<std::uint32_t>> trace(banks.size());

  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      // Fresh bank traces + sampler trace for this pixel's window.
      for (std::size_t b = 0; b < banks.size(); ++b) {
        trace[b].resize(n);
        for (std::size_t i = 0; i < n; ++i) trace[b][i] = banks[b].next();
      }
      const auto picks = sampler.trace(n);

      // Generate the window's input streams (3x3, clamped).
      std::array<Bitstream, 9> window;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const double pixel =
              input.at_clamped(static_cast<std::ptrdiff_t>(x) + dx,
                               static_cast<std::ptrdiff_t>(y) + dy);
          const std::uint32_t level = unipolar_level(pixel, natural);
          const std::size_t idx =
              static_cast<std::size_t>((dy + 1) * 3 + (dx + 1));
          const std::size_t bank =
              (static_cast<std::size_t>(dx + 1) + x + 2 * (y + static_cast<std::size_t>(dy + 1))) %
              banks.size();
          Bitstream s(n);
          for (std::size_t i = 0; i < n; ++i) {
            if (trace[bank][i] < level) s.set(i, true);
          }
          window[idx] = std::move(s);
        }
      }

      // Column / row weighted means: per cycle the shared sampler picks
      // element 0, 1 (weight 2), or 2 of each line.
      auto line_mean = [&](const std::array<int, 3>& idx) {
        Bitstream out_stream(n);
        for (std::size_t i = 0; i < n; ++i) {
          const Bitstream& chosen =
              window[static_cast<std::size_t>(idx[picks[i]])];
          if (chosen.get(i)) out_stream.set(i, true);
        }
        return out_stream;
      };
      const Bitstream left = line_mean({0, 3, 6});
      const Bitstream right = line_mean({2, 5, 8});
      const Bitstream top = line_mean({0, 1, 2});
      const Bitstream bottom = line_mean({6, 7, 8});

      Bitstream gx;
      Bitstream gy;
      Bitstream magnitude;
      if (config.manipulate) {
        core::Synchronizer sync_x({config.sync_depth, false});
        core::Synchronizer sync_y({config.sync_depth, false});
        const sc::StreamPair px = core::apply(sync_x, right, left);
        const sc::StreamPair py = core::apply(sync_y, bottom, top);
        gx = px.x ^ px.y;
        gy = py.x ^ py.y;
        core::Desynchronizer desync({config.desync_depth, false});
        const sc::StreamPair sum = core::apply(desync, gx, gy);
        magnitude = sum.x | sum.y;
      } else {
        gx = right ^ left;
        gy = bottom ^ top;
        magnitude = gx | gy;
      }
      result.output.at(x, y) = magnitude.value();
    }
  }

  result.error = mean_abs_error(result.output, result.reference);
  if (config.manipulate) {
    result.manipulators = hw::synchronizer_netlist(config.sync_depth) * 2 +
                          hw::desynchronizer_netlist(config.desync_depth);
    result.manipulators.set_label("sobel-manipulators/pixel");
  } else {
    result.manipulators = hw::Netlist("sobel-manipulators/pixel(none)");
  }
  return result;
}

}  // namespace sc::img
