/// \file sc_pipeline.hpp
/// The paper's §IV SC image accelerator: tiled Gaussian blur + Roberts
/// cross edge detection with three correlation-management variants.
///
/// Dataflow per 10x10 output tile (all pixels of a tile in parallel, one
/// tile at a time, N-cycle streams):
///
///   input pixels --SNG bank--> X  --GB mux tree--> G --[variant]--> G'
///   G' --XOR pairs + MUX--> ED --S/D counters--> output pixels
///
/// * Gaussian blur: 9-to-1 MUX tree sampling the 3x3 window with binomial
///   weights {1,2,4,...}/16 from a shared select decoder (inputs only need
///   to be uncorrelated with the select stream, so input SNGs amortize a
///   small LFSR bank).
/// * Roberts cross: |a-d| and |b-c| via XOR (requires *positively*
///   correlated operands) and a MUX scaled add.  GB outputs are only
///   partially correlated - this mismatch is the paper's motivating
///   example.
///
/// Variants (paper Table IV):
///  1. kNoManipulation - GB outputs feed the XORs directly (inaccurate).
///  2. kRegeneration   - every GB output is S/D->D/S re-encoded from one
///     shared RNG (all pairs SCC = +1; accurate but expensive).
///  3. kSynchronizer   - a synchronizer in front of each XOR pair
///     (accurate, ~2x more manipulator instances than regeneration uses
///     converters, but each is far cheaper - the paper's headline win).

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "graph/program.hpp"
#include "hw/cost.hpp"
#include "hw/netlist.hpp"
#include "img/image.hpp"

namespace sc::engine {
class Session;
}

namespace sc::img {

/// Correlation-management strategy between the GB and ED kernels.
enum class Variant {
  kNoManipulation,
  kRegeneration,
  kSynchronizer,
};

std::string to_string(Variant variant);

/// Accelerator parameters.
struct PipelineConfig {
  std::size_t stream_length = 256;  ///< N (bits per stream)
  std::size_t tile = 10;            ///< output tile side (paper: 10)
  unsigned sng_width = 8;           ///< SNG comparator/RNG width (N = 2^w)
  unsigned input_banks = 8;         ///< input LFSR bank size
  unsigned sync_depth = 2;          ///< synchronizer save depth D
  std::uint32_t seed = 7;           ///< base LFSR seed
  double clock_hz = 100e6;          ///< cost-model operating point
};

/// Hardware accounting of one accelerator variant.
struct PipelineCost {
  hw::Netlist netlist;          ///< full accelerator (base + overhead)
  hw::CostReport report;        ///< area/power at the operating point
  double energy_nj_frame = 0.0; ///< total energy per processed frame
  double overhead_power_uw = 0.0;   ///< correlation-manipulation power only
  double overhead_energy_nj = 0.0;  ///< correlation-manipulation energy only
  std::size_t tiles = 0;            ///< tiles per frame
  std::size_t manipulator_units = 0;  ///< # synchronizers or regenerators
};

/// Result of simulating one variant on one image.
struct PipelineResult {
  Variant variant = Variant::kNoManipulation;
  Image output;       ///< SC result
  Image reference;    ///< float pipeline on the same input
  double error = 0.0; ///< mean absolute pixel error vs reference
  PipelineCost cost;
};

/// Simulates the accelerator bit-by-bit on `input` and accounts its
/// hardware cost (paper Table IV row for the given variant).
PipelineResult run_pipeline(const Image& input, Variant variant,
                            const PipelineConfig& config = {});

/// Tile-parallel simulation: fans the image's tiles across the session's
/// thread pool.  Unlike run_pipeline (one tile engine whose LFSRs free-run
/// across tiles), every tile runs on its own generators seeded
/// deterministically from (config.seed, tile index) — the analog of an
/// array of tile engines.  The output is therefore a function of `config`
/// alone: bit-identical for every thread count, but not bit-identical to
/// the serial engine's free-running schedule (both are valid hardware
/// realizations with statistically equivalent accuracy).
PipelineResult run_pipeline_tiled(const Image& input, Variant variant,
                                  const PipelineConfig& config,
                                  engine::Session& session);

/// Netlist of the kernels + converters common to all variants (per tile
/// engine).
hw::Netlist pipeline_base_netlist(const PipelineConfig& config);

/// Netlist of the correlation-manipulation hardware a variant adds.
hw::Netlist pipeline_overhead_netlist(Variant variant,
                                      const PipelineConfig& config);

/// The pipeline's per-window dataflow as a registry program: a 4x4 pixel
/// window through four overlapping 3x3 Gaussian-blur MUX trees
/// ("gaussian-blur-3x3") into one Roberts-cross stage ("roberts-cross"),
/// output named "edge".  The GB outputs share input lineage, so the
/// planner discovers the blur->edge correlation mismatch on its own and —
/// under Strategy::kManipulation — inserts a synchronizer in front of each
/// Roberts diagonal pair, exactly the paper's Table IV "synchronizer"
/// variant, with no pipeline-specific planner code.
///
/// `pixels` is the window row-major in [0, 1]; pixel i is encoded from
/// RNG group (i % rng_groups), modeling the amortized input LFSR bank.
graph::Program window_program(const std::array<double, 16>& pixels,
                              unsigned rng_groups = 4);

/// Float reference of window_program's output (blur then Roberts cross on
/// the center 2x2), for end-to-end error checks.
double window_reference(const std::array<double, 16>& pixels);

}  // namespace sc::img
