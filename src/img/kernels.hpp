/// \file kernels.hpp
/// Floating-point reference kernels for the §IV pipeline: 3x3 Gaussian blur
/// and the Roberts cross edge detector (paper refs [13]).
///
/// The SC accelerator (sc_pipeline.hpp) approximates exactly these
/// functions; the paper's image "Abs. Error" compares the SC output against
/// this float pipeline on the same input.

#pragma once

#include <array>

#include "img/image.hpp"

namespace sc::img {

/// The 3x3 binomial Gaussian kernel (1/16) {1 2 1; 2 4 2; 1 2 1} used by the
/// SC MUX-tree implementation; weights sum to 1 with 16 "slots".
inline constexpr std::array<int, 9> kGaussianWeights16 = {1, 2, 1,
                                                          2, 4, 2,
                                                          1, 2, 1};

/// 3x3 Gaussian blur with border-clamped sampling.
Image gaussian_blur3(const Image& input);

/// Roberts cross edge detector on a (blurred) image, matching the SC
/// dataflow: ED(i,j) = 0.5 * (|G(i,j) - G(i+1,j+1)| + |G(i+1,j) - G(i,j+1)|)
/// with border clamping.  The 0.5 factor is the SC MUX adder's scale.
Image roberts_cross(const Image& input);

/// Full float reference pipeline: roberts_cross(gaussian_blur3(input)).
Image reference_pipeline(const Image& input);

/// 3x3 median filter reference (for the sorting-network example).
Image median3x3(const Image& input);

}  // namespace sc::img
