#include "img/sc_pipeline.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "bitstream/encoding.hpp"
#include "convert/regenerator.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "engine/batch.hpp"
#include "engine/session.hpp"
#include "hw/designs.hpp"
#include "img/kernels.hpp"
#include "rng/lfsr.hpp"

namespace sc::img {
namespace {

using sc::Bitstream;

/// Cumulative 16-slot thresholds of the binomial kernel: a uniform value
/// u in [0,16) selects neighbor k iff u < threshold[k] and u >= threshold[k-1].
constexpr std::array<int, 9> kCumulativeWeights = {1, 3, 4, 6, 10, 12, 13,
                                                   15, 16};

int select_neighbor(unsigned slot) {
  for (int k = 0; k < 9; ++k) {
    if (static_cast<int>(slot) < kCumulativeWeights[static_cast<std::size_t>(k)]) {
      return k;
    }
  }
  return 8;
}

/// Per-run stream generation state: free-running LFSRs shared across tiles,
/// exactly as a hardware tile engine would run them.
struct Generators {
  std::vector<rng::Lfsr> banks;
  rng::Lfsr gb_select;
  rng::Lfsr ed_select;
  rng::Lfsr regen;

  Generators(const PipelineConfig& config)
      : gb_select(config.sng_width, config.seed + 101),
        ed_select(config.sng_width, config.seed + 211),
        regen(config.sng_width, config.seed + 307) {
    for (unsigned b = 0; b < config.input_banks; ++b) {
      banks.emplace_back(config.sng_width, config.seed + 11 * (b + 1));
    }
  }
};

/// Simulates one output tile, writing its pixels into `output`.  Streams
/// are produced by `gen`, whose LFSRs advance as a hardware tile engine's
/// would; the caller decides whether generators free-run across tiles
/// (serial engine) or are freshly seeded per tile (tile-engine array).
void process_tile(const Image& input, Variant variant,
                  const PipelineConfig& config, std::size_t tx, std::size_t ty,
                  Generators& gen, Image& output) {
  const std::size_t n = config.stream_length;
  const std::size_t t = config.tile;
  const std::uint32_t natural =
      static_cast<std::uint32_t>(1u << config.sng_width);

  const std::ptrdiff_t c0 = static_cast<std::ptrdiff_t>(tx * t);
  const std::ptrdiff_t r0 = static_cast<std::ptrdiff_t>(ty * t);

  // --- input SN generation: (t+3)^2 streams from the shared bank ----
  // Bank traces are generated once per tile; every comparator on the
  // same bank sees the same per-cycle random value.
  const std::size_t in_side = t + 3;
  std::vector<std::vector<std::uint32_t>> bank_trace(gen.banks.size());
  for (std::size_t b = 0; b < gen.banks.size(); ++b) {
    bank_trace[b].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      bank_trace[b][i] = gen.banks[b].next();
    }
  }
  std::vector<Bitstream> in_streams(in_side * in_side);
  for (std::size_t iy = 0; iy < in_side; ++iy) {
    for (std::size_t ix = 0; ix < in_side; ++ix) {
      const double pixel =
          input.at_clamped(c0 - 1 + static_cast<std::ptrdiff_t>(ix),
                           r0 - 1 + static_cast<std::ptrdiff_t>(iy));
      const std::uint32_t level = unipolar_level(pixel, natural);
      const std::size_t bank = (ix + iy) % gen.banks.size();
      Bitstream s(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (bank_trace[bank][i] < level) s.set(i, true);
      }
      in_streams[iy * in_side + ix] = std::move(s);
    }
  }

  // --- Gaussian blur: shared select trace, 9-to-1 sampling ----------
  const std::size_t gb_side = t + 1;
  std::vector<int> gb_pick(n);
  for (std::size_t i = 0; i < n; ++i) {
    gb_pick[i] = select_neighbor(gen.gb_select.next() & 15u);
  }
  std::vector<Bitstream> gb_streams(gb_side * gb_side);
  for (std::size_t gy = 0; gy < gb_side; ++gy) {
    for (std::size_t gx = 0; gx < gb_side; ++gx) {
      Bitstream g(n);
      for (std::size_t i = 0; i < n; ++i) {
        const int k = gb_pick[i];
        const std::size_t nx = gx + static_cast<std::size_t>(k % 3);
        const std::size_t ny = gy + static_cast<std::size_t>(k / 3);
        // Window of GB output (gx,gy) covers input pixels
        // (gx .. gx+2, gy .. gy+2) in halo coordinates.
        if (in_streams[ny * in_side + nx].get(i)) g.set(i, true);
      }
      gb_streams[gy * gb_side + gx] = std::move(g);
    }
  }

  // --- variant: correlation manipulation between GB and ED ----------
  if (variant == Variant::kRegeneration) {
    gb_streams = convert::regenerate_bus_correlated(gb_streams, gen.regen);
  }

  // --- edge detection ------------------------------------------------
  Bitstream ed_sel(n);
  {
    const std::uint32_t half = natural / 2;
    for (std::size_t i = 0; i < n; ++i) {
      if (gen.ed_select.next() < half) ed_sel.set(i, true);
    }
  }
  for (std::size_t y = 0; y < t; ++y) {
    for (std::size_t x = 0; x < t; ++x) {
      const std::size_t ox = tx * t + x;
      const std::size_t oy = ty * t + y;
      if (ox >= input.width() || oy >= input.height()) continue;

      const Bitstream& a = gb_streams[y * gb_side + x];
      const Bitstream& d = gb_streams[(y + 1) * gb_side + (x + 1)];
      const Bitstream& b = gb_streams[y * gb_side + (x + 1)];
      const Bitstream& c = gb_streams[(y + 1) * gb_side + x];

      Bitstream diff_ad;
      Bitstream diff_bc;
      if (variant == Variant::kSynchronizer) {
        core::Synchronizer s1({config.sync_depth, false});
        core::Synchronizer s2({config.sync_depth, false});
        const sc::StreamPair ad = core::apply(s1, a, d);
        const sc::StreamPair bc = core::apply(s2, b, c);
        diff_ad = ad.x ^ ad.y;
        diff_bc = bc.x ^ bc.y;
      } else {
        diff_ad = a ^ d;
        diff_bc = b ^ c;
      }
      const Bitstream ed = Bitstream::mux(diff_ad, diff_bc, ed_sel);
      output.at(ox, oy) = ed.value();
    }
  }
}

/// Hardware accounting shared by the serial and tiled paths (one tile
/// engine processing all tiles serially, the paper's operating model).
void account_cost(PipelineResult& result, Variant variant,
                  const PipelineConfig& config, std::size_t tiles) {
  const hw::Netlist base = pipeline_base_netlist(config);
  const hw::Netlist overhead = pipeline_overhead_netlist(variant, config);
  hw::Netlist full = base + overhead;
  full.set_label(to_string(variant));

  hw::CostConfig cost_config;
  cost_config.clock_hz = config.clock_hz;
  cost_config.cycles = tiles * config.stream_length;

  result.cost.netlist = full;
  result.cost.report = hw::evaluate(full, cost_config);
  result.cost.energy_nj_frame = result.cost.report.energy_nj();
  result.cost.tiles = tiles;

  const hw::CostReport overhead_report = hw::evaluate(overhead, cost_config);
  result.cost.overhead_power_uw = overhead_report.power_uw;
  result.cost.overhead_energy_nj = overhead_report.energy_nj();
  const std::size_t t = config.tile;
  switch (variant) {
    case Variant::kNoManipulation:
      result.cost.manipulator_units = 0;
      break;
    case Variant::kRegeneration:
      result.cost.manipulator_units = (t + 1) * (t + 1);
      break;
    case Variant::kSynchronizer:
      result.cost.manipulator_units = 2 * t * t;
      break;
  }
}

}  // namespace

std::string to_string(Variant variant) {
  switch (variant) {
    case Variant::kNoManipulation:
      return "SC no-manipulation";
    case Variant::kRegeneration:
      return "SC regeneration";
    case Variant::kSynchronizer:
      return "SC synchronizer";
  }
  return "?";
}

hw::Netlist pipeline_base_netlist(const PipelineConfig& config) {
  const std::uint64_t t = config.tile;
  const std::uint64_t in_pixels = (t + 3) * (t + 3);
  const std::uint64_t gb_units = (t + 1) * (t + 1);
  const std::uint64_t ed_units = t * t;
  const unsigned w = config.sng_width;

  hw::Netlist n("pipeline-base");
  // Input tile buffer: one w-bit register per input pixel (loaded once per
  // tile; clock-gated flops).
  n.add(hw::Cell::kDffEn, in_pixels * w);
  // Input SNG comparators (RNG bank shared).
  n += hw::comparator_netlist(w) * in_pixels;
  // Input RNG bank.
  n += hw::lfsr_netlist(w) * config.input_banks;
  // GB: 9-to-1 mux tree per unit plus one shared weight decoder and RNG.
  hw::Netlist gb("gb-mux");
  gb.add(hw::Cell::kMux2, 8);
  n += gb * gb_units;
  hw::Netlist decoder("weight-decoder");
  decoder.add(hw::Cell::kNand2, 8).add(hw::Cell::kInv, 4);
  n += decoder;
  n += hw::lfsr_netlist(w);  // GB select RNG
  // ED: two XORs + one MUX per output plus one shared select RNG.
  hw::Netlist ed("ed-kernel");
  ed.add(hw::Cell::kXor2, 2).add(hw::Cell::kMux2, 1);
  n += ed * ed_units;
  n += hw::lfsr_netlist(w);  // ED select RNG
  // Output S/D counters.
  n += hw::sd_converter_netlist(w) * ed_units;
  n.set_label("pipeline-base");
  return n;
}

hw::Netlist pipeline_overhead_netlist(Variant variant,
                                      const PipelineConfig& config) {
  const std::uint64_t t = config.tile;
  const std::uint64_t gb_units = (t + 1) * (t + 1);
  const std::uint64_t ed_units = t * t;

  switch (variant) {
    case Variant::kNoManipulation:
      return hw::Netlist("no-manipulation");
    case Variant::kRegeneration: {
      // One regenerator per GB output plus the shared D/S RNG.
      hw::Netlist n = hw::regenerator_netlist(config.sng_width) * gb_units;
      n += hw::lfsr_netlist(config.sng_width);
      n.set_label("regeneration-overhead");
      return n;
    }
    case Variant::kSynchronizer: {
      // Two synchronizers per ED output (one per XOR operand pair).
      hw::Netlist n =
          hw::synchronizer_netlist(config.sync_depth) * (2 * ed_units);
      n.set_label("synchronizer-overhead");
      return n;
    }
  }
  return hw::Netlist{};
}

PipelineResult run_pipeline(const Image& input, Variant variant,
                            const PipelineConfig& config) {
  assert(!input.empty());
  const std::size_t t = config.tile;

  PipelineResult result;
  result.variant = variant;
  result.reference = reference_pipeline(input);
  result.output = Image(input.width(), input.height());

  // One tile engine with free-running LFSRs, processing tiles serially.
  Generators gen(config);

  const std::size_t tiles_x = (input.width() + t - 1) / t;
  const std::size_t tiles_y = (input.height() + t - 1) / t;

  for (std::size_t ty = 0; ty < tiles_y; ++ty) {
    for (std::size_t tx = 0; tx < tiles_x; ++tx) {
      process_tile(input, variant, config, tx, ty, gen, result.output);
    }
  }

  result.error = mean_abs_error(result.output, result.reference);
  account_cost(result, variant, config, tiles_x * tiles_y);
  return result;
}

PipelineResult run_pipeline_tiled(const Image& input, Variant variant,
                                  const PipelineConfig& config,
                                  engine::Session& session) {
  assert(!input.empty());
  const std::size_t t = config.tile;

  PipelineResult result;
  result.variant = variant;
  result.reference = reference_pipeline(input);
  result.output = Image(input.width(), input.height());

  const std::size_t tiles_x = (input.width() + t - 1) / t;
  const std::size_t tiles_y = (input.height() + t - 1) / t;
  const std::size_t tiles = tiles_x * tiles_y;

  // Each tile gets its own generators, seeded from the tile index: the
  // hardware analog is an array of identical tile engines with per-engine
  // seed registers.  Tiles touch disjoint output pixels, so the fan-out
  // needs no synchronization, and the output depends only on `config` —
  // not on the session's thread count or scheduling.
  session.for_each(tiles, [&](std::size_t tile_index) {
    PipelineConfig tile_config = config;
    // Strided so tile seeds stay distinct after the generators' LFSRs
    // mask them down to sng_width bits.
    tile_config.seed = engine::strided_seed32(config.seed, tile_index);
    Generators gen(tile_config);
    process_tile(input, variant, tile_config, tile_index % tiles_x,
                 tile_index / tiles_x, gen, result.output);
  });

  result.error = mean_abs_error(result.output, result.reference);
  account_cost(result, variant, config, tiles);
  return result;
}

graph::Program window_program(const std::array<double, 16>& pixels,
                              unsigned rng_groups) {
  if (rng_groups < 1) {
    // An assert vanishes under NDEBUG and `i % rng_groups` would divide
    // by zero (same class as the overlap() release-mode fix).
    throw std::invalid_argument("window_program: rng_groups must be >= 1");
  }
  graph::GraphBuilder b;
  std::array<graph::Value, 16> px;
  for (unsigned i = 0; i < 16; ++i) {
    px[i] = b.input("p" + std::to_string(i / 4) + std::to_string(i % 4),
                    pixels[i], i % rng_groups);
  }
  // Four overlapping 3x3 blur windows centered on the inner 2x2.
  std::array<graph::Value, 4> blurred;
  for (unsigned cy = 0; cy < 2; ++cy) {
    for (unsigned cx = 0; cx < 2; ++cx) {
      std::vector<graph::Value> window;
      window.reserve(9);
      for (unsigned dy = 0; dy < 3; ++dy) {
        for (unsigned dx = 0; dx < 3; ++dx) {
          window.push_back(px[(cy + dy) * 4 + (cx + dx)]);
        }
      }
      blurred[cy * 2 + cx] = b.op("gaussian-blur-3x3", window);
    }
  }
  b.output(b.op("roberts-cross", {blurred[0], blurred[1], blurred[2],
                                  blurred[3]}),
           "edge");
  return b.build();
}

double window_reference(const std::array<double, 16>& pixels) {
  // Deliberately independent of the registry's exact() lambdas (weights
  // and Roberts formula restated): this is the cross-check that keeps the
  // registered operator semantics honest, so do not fold it into them.
  static constexpr double kW[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};
  double g[4];
  for (unsigned cy = 0; cy < 2; ++cy) {
    for (unsigned cx = 0; cx < 2; ++cx) {
      double sum = 0.0;
      for (unsigned dy = 0; dy < 3; ++dy) {
        for (unsigned dx = 0; dx < 3; ++dx) {
          sum += kW[dy * 3 + dx] * pixels[(cy + dy) * 4 + (cx + dx)];
        }
      }
      g[cy * 2 + cx] = sum / 16.0;
    }
  }
  return 0.5 * (std::abs(g[0] - g[3]) + std::abs(g[1] - g[2]));
}

}  // namespace sc::img
