/// \file image.hpp
/// Grayscale float image substrate for the paper's §IV case study:
/// container, clamped addressing, PGM I/O, synthetic scenes, and
/// image-level error metrics.
///
/// Pixels are doubles in [0, 1].  The paper's evaluation needs input images
/// only as workloads whose SC result is compared against the floating-point
/// pipeline on the *same* image, so deterministic synthetic scenes (with
/// realistic gradients, edges, and texture) substitute for the authors'
/// unspecified test images; PGM I/O lets users run their own.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sc::img {

/// Row-major grayscale image with values in [0, 1].
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, double fill = 0.0);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t pixel_count() const { return width_ * height_; }
  [[nodiscard]] bool empty() const { return pixel_count() == 0; }

  /// Unchecked access; (x, y) must be inside the image.
  [[nodiscard]] double at(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }
  double& at(std::size_t x, std::size_t y) { return pixels_[y * width_ + x]; }

  /// Border-clamped access: coordinates are clamped into the image, the
  /// convention used by both the float reference kernels and the SC tiles.
  [[nodiscard]] double at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const;

  const std::vector<double>& pixels() const { return pixels_; }

  /// Clamps every pixel into [0, 1].
  void clamp();

  // --- synthetic scenes ---------------------------------------------------

  /// Smooth diagonal gradient.
  static Image gradient(std::size_t width, std::size_t height);
  /// Checkerboard with `cell`-pixel squares (hard edges).
  static Image checkerboard(std::size_t width, std::size_t height,
                            std::size_t cell);
  /// Sum of randomly placed Gaussian blobs (smooth structure), seeded.
  static Image blobs(std::size_t width, std::size_t height,
                     std::uint64_t seed, std::size_t count = 6);
  /// Blobs + edges + mild deterministic noise: the default benchmark scene.
  static Image synthetic_scene(std::size_t width, std::size_t height,
                               std::uint64_t seed);

  // --- PGM I/O --------------------------------------------------------------

  /// Loads a binary (P5) or ASCII (P2) PGM.  Returns an empty image and
  /// fills `error` (if non-null) on failure.
  static Image load_pgm(const std::string& path, std::string* error = nullptr);
  /// Writes a binary (P5) 8-bit PGM.  Returns false on I/O failure.
  [[nodiscard]] bool save_pgm(const std::string& path) const;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<double> pixels_;
};

/// Mean absolute per-pixel difference (the paper's image "Abs. Error").
/// Images must have identical dimensions.
double mean_abs_error(const Image& a, const Image& b);

/// Largest absolute per-pixel difference.
double max_abs_error(const Image& a, const Image& b);

}  // namespace sc::img
