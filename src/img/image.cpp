#include "img/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>

namespace sc::img {

Image::Image(std::size_t width, std::size_t height, double fill)
    : width_(width), height_(height), pixels_(width * height, fill) {}

double Image::at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const {
  const auto cx = std::clamp<std::ptrdiff_t>(
      x, 0, static_cast<std::ptrdiff_t>(width_) - 1);
  const auto cy = std::clamp<std::ptrdiff_t>(
      y, 0, static_cast<std::ptrdiff_t>(height_) - 1);
  return at(static_cast<std::size_t>(cx), static_cast<std::size_t>(cy));
}

void Image::clamp() {
  for (double& p : pixels_) p = std::clamp(p, 0.0, 1.0);
}

Image Image::gradient(std::size_t width, std::size_t height) {
  Image out(width, height);
  const double denom =
      std::max<double>(1.0, static_cast<double>(width + height - 2));
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      out.at(x, y) = static_cast<double>(x + y) / denom;
    }
  }
  return out;
}

Image Image::checkerboard(std::size_t width, std::size_t height,
                          std::size_t cell) {
  assert(cell >= 1);
  Image out(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      out.at(x, y) = ((x / cell + y / cell) % 2 == 0) ? 0.85 : 0.15;
    }
  }
  return out;
}

Image Image::blobs(std::size_t width, std::size_t height, std::uint64_t seed,
                   std::size_t count) {
  Image out(width, height, 0.1);
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> ux(0.0, static_cast<double>(width));
  std::uniform_real_distribution<double> uy(0.0, static_cast<double>(height));
  std::uniform_real_distribution<double> usigma(
      static_cast<double>(width) / 12.0, static_cast<double>(width) / 5.0);
  std::uniform_real_distribution<double> uamp(0.3, 0.8);
  for (std::size_t b = 0; b < count; ++b) {
    const double cx = ux(gen);
    const double cy = uy(gen);
    const double sigma = usigma(gen);
    const double amp = uamp(gen);
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double dx = static_cast<double>(x) - cx;
        const double dy = static_cast<double>(y) - cy;
        out.at(x, y) += amp * std::exp(-(dx * dx + dy * dy) /
                                       (2.0 * sigma * sigma));
      }
    }
  }
  out.clamp();
  return out;
}

Image Image::synthetic_scene(std::size_t width, std::size_t height,
                             std::uint64_t seed) {
  Image out = blobs(width, height, seed);
  // Hard-edged square (exercises the edge detector).
  const std::size_t x0 = width / 5;
  const std::size_t y0 = height / 5;
  const std::size_t x1 = std::min(width - 1, x0 + width / 3);
  const std::size_t y1 = std::min(height - 1, y0 + height / 3);
  for (std::size_t y = y0; y <= y1; ++y) {
    for (std::size_t x = x0; x <= x1; ++x) {
      out.at(x, y) = 0.9;
    }
  }
  // Mild deterministic texture.
  std::mt19937_64 gen(seed ^ 0x9e3779b97f4a7c15ull);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      out.at(x, y) += noise(gen);
    }
  }
  out.clamp();
  return out;
}

Image Image::load_pgm(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return Image{};
  };
  if (!in) return fail("cannot open " + path);

  std::string magic;
  in >> magic;
  if (magic != "P5" && magic != "P2") return fail("not a PGM file: " + path);

  auto next_token = [&in]() {
    std::string token;
    while (in >> token) {
      if (token[0] == '#') {
        std::string line;
        std::getline(in, line);
        continue;
      }
      return token;
    }
    return std::string{};
  };

  const std::string ws = next_token();
  const std::string hs = next_token();
  const std::string ms = next_token();
  if (ws.empty() || hs.empty() || ms.empty()) return fail("truncated header");
  const std::size_t width = std::stoul(ws);
  const std::size_t height = std::stoul(hs);
  const int maxval = std::stoi(ms);
  if (width == 0 || height == 0 || maxval <= 0 || maxval > 255) {
    return fail("unsupported PGM geometry");
  }

  Image out(width, height);
  if (magic == "P5") {
    in.get();  // single whitespace after maxval
    std::vector<unsigned char> raw(width * height);
    in.read(reinterpret_cast<char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    if (!in) return fail("truncated raster");
    for (std::size_t i = 0; i < raw.size(); ++i) {
      out.at(i % width, i / width) =
          static_cast<double>(raw[i]) / static_cast<double>(maxval);
    }
  } else {
    for (std::size_t i = 0; i < width * height; ++i) {
      int v = 0;
      if (!(in >> v)) return fail("truncated raster");
      out.at(i % width, i / width) =
          static_cast<double>(v) / static_cast<double>(maxval);
    }
  }
  return out;
}

bool Image::save_pgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P5\n" << width_ << " " << height_ << "\n255\n";
  for (double p : pixels_) {
    const int v = static_cast<int>(
        std::lround(std::clamp(p, 0.0, 1.0) * 255.0));
    out.put(static_cast<char>(v));
  }
  return static_cast<bool>(out);
}

double mean_abs_error(const Image& a, const Image& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    sum += std::abs(a.pixels()[i] - b.pixels()[i]);
  }
  return sum / static_cast<double>(a.pixels().size());
}

double max_abs_error(const Image& a, const Image& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    worst = std::max(worst, std::abs(a.pixels()[i] - b.pixels()[i]));
  }
  return worst;
}

}  // namespace sc::img
