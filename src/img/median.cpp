#include "img/median.hpp"

#include <cassert>

#include "arith/gates.hpp"
#include "bitstream/encoding.hpp"
#include "core/pair_transform.hpp"
#include "core/synchronizer.hpp"
#include "rng/lfsr.hpp"

namespace sc::img {

const std::array<std::pair<int, int>, 25>& median9_network() {
  // Optimal 25-CE / depth-9 sorting network for 9 inputs (Knuth TAOCP v3).
  static const std::array<std::pair<int, int>, 25> kNetwork = {{
      {0, 3}, {1, 7}, {2, 5}, {4, 8},
      {0, 7}, {2, 4}, {3, 8}, {5, 6},
      {0, 2}, {1, 3}, {4, 5}, {7, 8},
      {1, 4}, {3, 6}, {5, 7},
      {0, 1}, {2, 4}, {3, 5}, {6, 8},
      {2, 3}, {4, 5}, {6, 7},
      {1, 2}, {3, 4}, {5, 6},
  }};
  return kNetwork;
}

Bitstream sc_median9(const std::array<Bitstream, 9>& window,
                     unsigned sync_depth) {
  std::array<Bitstream, 9> lanes = window;
  for (const auto& [lo, hi] : median9_network()) {
    core::Synchronizer sync({sync_depth, false});
    const sc::StreamPair synced =
        core::apply(sync, lanes[static_cast<std::size_t>(lo)],
                    lanes[static_cast<std::size_t>(hi)]);
    lanes[static_cast<std::size_t>(lo)] = arith::and_gate(synced.x, synced.y);
    lanes[static_cast<std::size_t>(hi)] = arith::or_gate(synced.x, synced.y);
  }
  return lanes[4];
}

Image sc_median_filter(const Image& input, const MedianConfig& config) {
  assert(!input.empty());
  const std::size_t n = config.stream_length;
  const auto natural = static_cast<std::uint32_t>(1u << config.sng_width);

  // Shared input RNG bank, free-running across pixels.
  std::vector<rng::Lfsr> banks;
  for (unsigned b = 0; b < config.input_banks; ++b) {
    banks.emplace_back(config.sng_width, config.seed + 17 * (b + 1));
  }

  Image out(input.width(), input.height());
  std::vector<std::vector<std::uint32_t>> trace(banks.size());

  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      // Fresh bank traces per pixel window (free-running LFSRs).
      for (std::size_t b = 0; b < banks.size(); ++b) {
        trace[b].resize(n);
        for (std::size_t i = 0; i < n; ++i) trace[b][i] = banks[b].next();
      }
      std::array<Bitstream, 9> window;
      int k = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const double pixel =
              input.at_clamped(static_cast<std::ptrdiff_t>(x) + dx,
                               static_cast<std::ptrdiff_t>(y) + dy);
          const std::uint32_t level = unipolar_level(pixel, natural);
          const std::size_t bank = static_cast<std::size_t>(k) % banks.size();
          Bitstream s(n);
          for (std::size_t i = 0; i < n; ++i) {
            if (trace[bank][i] < level) s.set(i, true);
          }
          window[static_cast<std::size_t>(k)] = std::move(s);
          ++k;
        }
      }
      out.at(x, y) = sc_median9(window, config.sync_depth).value();
    }
  }
  return out;
}

}  // namespace sc::img
