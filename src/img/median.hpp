/// \file median.hpp
/// SC 3x3 median filter built from the paper's synchronizer-based min/max
/// (an application extension: §III-D's sync-min/max as the compare-exchange
/// of a sorting network).
///
/// A compare-exchange on two SNs is one synchronizer followed by an AND
/// (min) and an OR (max) on the synchronized pair - a single synchronizer
/// serves both outputs.  Nine window streams pass through a 25-element
/// optimal sorting network; the middle output is the median.

#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "img/image.hpp"

namespace sc::img {

/// The 25 compare-exchange pairs of the optimal 9-input sorting network
/// (after all exchanges, lane i holds the i-th smallest value).
const std::array<std::pair<int, int>, 25>& median9_network();

/// Sorts 9 streams by value with sync-min/max compare-exchanges; returns the
/// median lane (index 4).  `sync_depth` is the synchronizer save depth.
Bitstream sc_median9(const std::array<Bitstream, 9>& window,
                     unsigned sync_depth = 1);

/// Parameters for the SC median filter.
struct MedianConfig {
  std::size_t stream_length = 256;
  unsigned sng_width = 8;
  unsigned input_banks = 8;
  unsigned sync_depth = 1;
  std::uint32_t seed = 23;
};

/// Runs the SC 3x3 median filter over a whole image; compare against
/// median3x3() for the float reference.
Image sc_median_filter(const Image& input, const MedianConfig& config = {});

}  // namespace sc::img
