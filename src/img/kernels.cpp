#include "img/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace sc::img {

Image gaussian_blur3(const Image& input) {
  Image out(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      double acc = 0.0;
      int k = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          acc += static_cast<double>(kGaussianWeights16[k]) *
                 input.at_clamped(static_cast<std::ptrdiff_t>(x) + dx,
                                  static_cast<std::ptrdiff_t>(y) + dy);
          ++k;
        }
      }
      out.at(x, y) = acc / 16.0;
    }
  }
  return out;
}

Image roberts_cross(const Image& input) {
  Image out(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      const auto ix = static_cast<std::ptrdiff_t>(x);
      const auto iy = static_cast<std::ptrdiff_t>(y);
      const double a = input.at_clamped(ix, iy);
      const double d = input.at_clamped(ix + 1, iy + 1);
      const double b = input.at_clamped(ix + 1, iy);
      const double c = input.at_clamped(ix, iy + 1);
      out.at(x, y) = 0.5 * (std::abs(a - d) + std::abs(b - c));
    }
  }
  return out;
}

Image reference_pipeline(const Image& input) {
  return roberts_cross(gaussian_blur3(input));
}

Image median3x3(const Image& input) {
  Image out(input.width(), input.height());
  for (std::size_t y = 0; y < input.height(); ++y) {
    for (std::size_t x = 0; x < input.width(); ++x) {
      std::array<double, 9> window;
      int k = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          window[static_cast<std::size_t>(k++)] =
              input.at_clamped(static_cast<std::ptrdiff_t>(x) + dx,
                               static_cast<std::ptrdiff_t>(y) + dy);
        }
      }
      std::nth_element(window.begin(), window.begin() + 4, window.end());
      out.at(x, y) = window[4];
    }
  }
  return out;
}

}  // namespace sc::img
