/// \file subtract.hpp
/// SC subtraction (paper Fig. 2c): absolute difference via XOR.
///
/// With maximally positively correlated operands (SCC = +1) the 1s of the
/// smaller stream are a subset of the larger stream's 1s, so XOR leaves
/// exactly |pX - pY|.  At lower correlation the XOR output value grows up to
/// pX + pY - 2 pX pY (independent operands), so the subtractor *requires*
/// positive correlation - the motivating consumer for the paper's
/// synchronizer in the image pipeline's Roberts-cross kernel.

#pragma once

#include "bitstream/bitstream.hpp"

namespace sc::arith {

/// Absolute difference: z = x XOR y.  Requires SCC(x, y) = +1 for accuracy.
Bitstream subtract_abs(const Bitstream& x, const Bitstream& y);

}  // namespace sc::arith
