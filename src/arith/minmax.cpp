#include "arith/minmax.hpp"

#include <cassert>

#include "arith/gates.hpp"

namespace sc::arith {

Bitstream or_max(const Bitstream& x, const Bitstream& y) {
  return or_gate(x, y);
}

Bitstream and_min(const Bitstream& x, const Bitstream& y) {
  return and_gate(x, y);
}

Bitstream ca_max(const Bitstream& x, const Bitstream& y) {
  assert(x.size() == y.size());
  Bitstream out;
  out.reserve(x.size());
  CaMax unit;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.push_back(unit.step(x.get(i), y.get(i)));
  }
  return out;
}

Bitstream ca_min(const Bitstream& x, const Bitstream& y) {
  assert(x.size() == y.size());
  Bitstream out;
  out.reserve(x.size());
  CaMin unit;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.push_back(unit.step(x.get(i), y.get(i)));
  }
  return out;
}

}  // namespace sc::arith
