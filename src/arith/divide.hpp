/// \file divide.hpp
/// SC division (paper Fig. 2e): CORDIV-style correlated divider,
/// Chen & Hayes ISVLSI 2016 (paper ref [6]).
///
/// For operands with SCC = +1 and pX <= pY, the quotient stream is formed by
/// passing x when y = 1 and otherwise replaying the most recent quotient bit
/// observed under y = 1 (held in a D flip-flop).  Conditioned on y = 1, x is
/// 1 with probability pX / pY (the subset property of positively correlated
/// streams), so the output value converges to the quotient.

#pragma once

#include "bitstream/bitstream.hpp"

namespace sc::arith {

/// Per-cycle CORDIV divider element.
class Cordiv {
 public:
  /// Consumes one (x, y) bit pair, emits one quotient bit.
  bool step(bool x, bool y) {
    if (y) {
      held_ = x;
      return x;
    }
    return held_;
  }
  void reset() { held_ = false; }

 private:
  bool held_ = false;  // last quotient bit sampled under y = 1
};

/// Whole-stream divide: pZ ~= pX / pY.  Requires SCC(x, y) = +1 and
/// pX <= pY; returns an all-ones-saturating approximation otherwise.
Bitstream divide(const Bitstream& x, const Bitstream& y);

}  // namespace sc::arith
