/// \file gates.hpp
/// Named combinational gate primitives on whole bitstreams.
///
/// These are thin wrappers over the word-parallel Bitstream operators; the
/// names document the SC function each gate computes *when its operands have
/// the correlation the function requires* (paper Table I / Fig. 2).

#pragma once

#include "bitstream/bitstream.hpp"

namespace sc::arith {

/// AND: multiply for uncorrelated operands; min(pX, pY) at SCC = +1;
/// max(0, pX + pY - 1) at SCC = -1 (paper Table I).
Bitstream and_gate(const Bitstream& x, const Bitstream& y);

/// OR: saturating add min(1, pX + pY) at SCC = -1; max(pX, pY) at SCC = +1.
Bitstream or_gate(const Bitstream& x, const Bitstream& y);

/// XOR: absolute difference |pX - pY| at SCC = +1.
Bitstream xor_gate(const Bitstream& x, const Bitstream& y);

/// XNOR: bipolar multiply for uncorrelated operands.
Bitstream xnor_gate(const Bitstream& x, const Bitstream& y);

/// NOT: computes 1 - pX (unipolar) / -pX (bipolar).
Bitstream not_gate(const Bitstream& x);

/// MUX: out = sel ? y : x.  Scaled add with a pR = 0.5 select stream
/// uncorrelated with both operands.
Bitstream mux_gate(const Bitstream& x, const Bitstream& y,
                   const Bitstream& sel);

}  // namespace sc::arith
