#include "arith/subtract.hpp"

#include "arith/gates.hpp"

namespace sc::arith {

Bitstream subtract_abs(const Bitstream& x, const Bitstream& y) {
  return xor_gate(x, y);
}

}  // namespace sc::arith
