/// \file minmax.hpp
/// Naive and correlation-agnostic SC maximum/minimum baselines
/// (paper Table III comparison points).
///
/// * or_max / and_min: single-gate designs that are exact only at SCC = +1
///   (Alaghi & Hayes ICCD 2013).  At lower correlation OR overshoots the max
///   and AND undershoots the min - the inaccuracy the paper's synchronizer-
///   based designs (core/ops.hpp) remove.
/// * ca_max / ca_min: correlation-agnostic counter-based designs in the
///   style of SC-DCNN's max-pooling unit (paper ref [12]): a binary
///   up/down counter tracks which operand has seen more 1s and steers that
///   operand to the output.  Accurate for any correlation, but needs a
///   log2(N)-bit counter - the area/power the paper's Table III charges it.

#pragma once

#include <cstdint>

#include "bitstream/bitstream.hpp"

namespace sc::arith {

/// max(pX, pY) via a single OR gate.  Exact only at SCC = +1; value
/// overshoots otherwise (output = pX + pY - p_overlap).
Bitstream or_max(const Bitstream& x, const Bitstream& y);

/// min(pX, pY) via a single AND gate.  Exact only at SCC = +1.
Bitstream and_min(const Bitstream& x, const Bitstream& y);

/// Per-cycle correlation-agnostic maximum (counter-steered selection).
class CaMax {
 public:
  bool step(bool x, bool y) {
    diff_ += static_cast<int>(x) - static_cast<int>(y);
    return diff_ >= 0 ? x : y;
  }
  void reset() { diff_ = 0; }

 private:
  std::int64_t diff_ = 0;  // running count(x) - count(y)
};

/// Per-cycle correlation-agnostic minimum (counter-steered selection).
class CaMin {
 public:
  bool step(bool x, bool y) {
    diff_ += static_cast<int>(x) - static_cast<int>(y);
    return diff_ >= 0 ? y : x;
  }
  void reset() { diff_ = 0; }

 private:
  std::int64_t diff_ = 0;
};

/// Whole-stream correlation-agnostic max; accurate for any SCC.
Bitstream ca_max(const Bitstream& x, const Bitstream& y);

/// Whole-stream correlation-agnostic min; accurate for any SCC.
Bitstream ca_min(const Bitstream& x, const Bitstream& y);

}  // namespace sc::arith
