#include "arith/divide.hpp"

#include <cassert>

namespace sc::arith {

Bitstream divide(const Bitstream& x, const Bitstream& y) {
  assert(x.size() == y.size());
  Bitstream out;
  out.reserve(x.size());
  Cordiv div;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.push_back(div.step(x.get(i), y.get(i)));
  }
  return out;
}

}  // namespace sc::arith
