#include "arith/gates.hpp"

namespace sc::arith {

Bitstream and_gate(const Bitstream& x, const Bitstream& y) { return x & y; }

Bitstream or_gate(const Bitstream& x, const Bitstream& y) { return x | y; }

Bitstream xor_gate(const Bitstream& x, const Bitstream& y) { return x ^ y; }

Bitstream xnor_gate(const Bitstream& x, const Bitstream& y) {
  return ~(x ^ y);
}

Bitstream not_gate(const Bitstream& x) { return ~x; }

Bitstream mux_gate(const Bitstream& x, const Bitstream& y,
                   const Bitstream& sel) {
  return Bitstream::mux(x, y, sel);
}

}  // namespace sc::arith
