#include "arith/multiply.hpp"

#include "arith/gates.hpp"

namespace sc::arith {

Bitstream multiply(const Bitstream& x, const Bitstream& y) {
  return and_gate(x, y);
}

Bitstream multiply_bipolar(const Bitstream& x, const Bitstream& y) {
  return xnor_gate(x, y);
}

}  // namespace sc::arith
