/// \file multiply.hpp
/// SC multiplication (paper Fig. 2d).
///
/// Unipolar multiply is a single AND gate and is exact when the operands are
/// uncorrelated (SCC = 0): P(X=1, Y=1) = pX * pY.  Bipolar multiply is an
/// XNOR gate under the same independence requirement.

#pragma once

#include "bitstream/bitstream.hpp"

namespace sc::arith {

/// Unipolar multiply: z = x AND y.  Requires SCC(x, y) = 0 for accuracy.
Bitstream multiply(const Bitstream& x, const Bitstream& y);

/// Bipolar multiply: z = x XNOR y.  Requires SCC(x, y) = 0 for accuracy.
Bitstream multiply_bipolar(const Bitstream& x, const Bitstream& y);

}  // namespace sc::arith
