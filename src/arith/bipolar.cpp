#include "arith/bipolar.hpp"

#include <cassert>

#include "arith/add.hpp"
#include "arith/gates.hpp"

namespace sc::arith {
namespace {

Bitstream select_stream(rng::RandomSource& source, std::size_t n) {
  Bitstream sel;
  sel.reserve(n);
  const std::uint32_t msb = 1u << (source.width() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    sel.push_back((source.next() & msb) != 0);
  }
  return sel;
}

}  // namespace

Bitstream negate_bipolar(const Bitstream& x) { return ~x; }

Bitstream scaled_add_bipolar(const Bitstream& x, const Bitstream& y,
                             const Bitstream& sel) {
  return Bitstream::mux(x, y, sel);
}

Bitstream scaled_add_bipolar(const Bitstream& x, const Bitstream& y,
                             rng::RandomSource& sel_source) {
  assert(x.size() == y.size());
  return Bitstream::mux(x, y, select_stream(sel_source, x.size()));
}

Bitstream scaled_sub_bipolar(const Bitstream& x, const Bitstream& y,
                             const Bitstream& sel) {
  return Bitstream::mux(x, ~y, sel);
}

Bitstream scaled_sub_bipolar(const Bitstream& x, const Bitstream& y,
                             rng::RandomSource& sel_source) {
  assert(x.size() == y.size());
  return Bitstream::mux(x, ~y, select_stream(sel_source, x.size()));
}

}  // namespace sc::arith
