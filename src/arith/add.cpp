#include "arith/add.hpp"

#include <cassert>

#include "arith/gates.hpp"

namespace sc::arith {

Bitstream scaled_add(const Bitstream& x, const Bitstream& y,
                     const Bitstream& sel) {
  return Bitstream::mux(x, y, sel);
}

Bitstream scaled_add(const Bitstream& x, const Bitstream& y,
                     rng::RandomSource& sel_source) {
  assert(x.size() == y.size());
  Bitstream sel;
  sel.reserve(x.size());
  const std::uint32_t msb = 1u << (sel_source.width() - 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    sel.push_back((sel_source.next() & msb) != 0);
  }
  return Bitstream::mux(x, y, sel);
}

Bitstream saturating_add(const Bitstream& x, const Bitstream& y) {
  return or_gate(x, y);
}

Bitstream toggle_add(const Bitstream& x, const Bitstream& y) {
  assert(x.size() == y.size());
  Bitstream out;
  out.reserve(x.size());
  ToggleAdder adder;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.push_back(adder.step(x.get(i), y.get(i)));
  }
  return out;
}

}  // namespace sc::arith
