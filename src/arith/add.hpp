/// \file add.hpp
/// SC addition variants: the MUX scaled adder (Fig. 2a), the OR saturating
/// adder (Fig. 2b), and the deterministic correlation-agnostic "toggle"
/// adder used as the CA-adder baseline (paper §II-B, ref [9]).

#pragma once

#include "bitstream/bitstream.hpp"
#include "rng/random_source.hpp"

namespace sc::arith {

/// Scaled add via MUX: pZ = 0.5 (pX + pY).  `sel` must be a pR = 0.5 stream
/// uncorrelated with both operands.
Bitstream scaled_add(const Bitstream& x, const Bitstream& y,
                     const Bitstream& sel);

/// Scaled add drawing the select stream from `sel_source` (one bit per cycle,
/// taken as the source's MSB so any width works).
Bitstream scaled_add(const Bitstream& x, const Bitstream& y,
                     rng::RandomSource& sel_source);

/// Saturating add via OR: pZ = min(1, pX + pY), exact at SCC(x, y) = -1.
/// With insufficient negative correlation the result under-approximates the
/// saturating sum (overlapping 1s merge).  See core::desync_saturating_add
/// for the paper's improved version.
Bitstream saturating_add(const Bitstream& x, const Bitstream& y);

/// Deterministic correlation-agnostic scaled adder ("toggle" adder).
///
/// out = (x AND y) OR (toggle AND (x XOR y)): both-1 cycles always emit 1,
/// both-0 cycles emit 0, and differing cycles alternate emitting 1/0 via a
/// T flip-flop.  The output ones count is a(x,y) + ceil/floor-half of the
/// differing positions, i.e. 0.5(pX+pY) within one LSB *regardless of the
/// operand correlation* - no random select stream needed.  This is the
/// style of correlation-insensitive adder the paper's CA-adder comparison
/// point ([9]) uses; it costs a flip-flop plus a few gates, which the cost
/// model reflects (5-10x the MUX adder).
Bitstream toggle_add(const Bitstream& x, const Bitstream& y);

/// Per-cycle form of toggle_add for the cycle-level simulator.
class ToggleAdder {
 public:
  bool step(bool x, bool y) {
    if (x == y) return x;
    toggle_ = !toggle_;
    return toggle_;
  }
  void reset() { toggle_ = false; }

 private:
  bool toggle_ = false;  // starts emitting 1 on the first differing cycle
};

}  // namespace sc::arith
