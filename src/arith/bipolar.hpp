/// \file bipolar.hpp
/// Bipolar-encoded SC arithmetic (paper §II-A).
///
/// Bipolar streams map 1 -> +1 and 0 -> -1, so a stream with ones-fraction
/// p encodes v = 2p - 1 in [-1, +1].  The gate-level identities change:
/// multiply becomes XNOR, negation becomes NOT, and the MUX scaled adder
/// carries over unchanged (it averages the encoded values in either
/// encoding).  Correlation requirements carry over too: bipolar multiply
/// needs SCC = 0 exactly like unipolar multiply, which is why the paper's
/// manipulating circuits apply unchanged to bipolar pipelines.

#pragma once

#include "bitstream/bitstream.hpp"
#include "rng/random_source.hpp"

namespace sc::arith {

/// Bipolar negation: v -> -v (bitwise NOT).
Bitstream negate_bipolar(const Bitstream& x);

/// Bipolar scaled addition: z = 0.5 (vX + vY).  `sel` must be a half-weight
/// stream uncorrelated with both operands (same MUX as the unipolar adder).
Bitstream scaled_add_bipolar(const Bitstream& x, const Bitstream& y,
                             const Bitstream& sel);
Bitstream scaled_add_bipolar(const Bitstream& x, const Bitstream& y,
                             rng::RandomSource& sel_source);

/// Bipolar scaled subtraction: z = 0.5 (vX - vY), a MUX with the Y leg
/// inverted.
Bitstream scaled_sub_bipolar(const Bitstream& x, const Bitstream& y,
                             const Bitstream& sel);
Bitstream scaled_sub_bipolar(const Bitstream& x, const Bitstream& y,
                             rng::RandomSource& sel_source);

}  // namespace sc::arith
