#include "func/bernstein.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "bitstream/encoding.hpp"
#include "convert/sng.hpp"
#include "core/shuffle_buffer.hpp"
#include "core/pair_transform.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/sobol.hpp"
#include "rng/van_der_corput.hpp"

namespace sc::func {

std::vector<double> bernstein_coefficients(
    const std::function<double(double)>& f, std::size_t degree) {
  std::vector<double> coefficients(degree + 1);
  for (std::size_t i = 0; i <= degree; ++i) {
    const double t =
        degree == 0 ? 0.0
                    : static_cast<double>(i) / static_cast<double>(degree);
    coefficients[i] = std::clamp(f(t), 0.0, 1.0);
  }
  return coefficients;
}

double bernstein_value(sc::span<const double> coefficients, double x) {
  assert(!coefficients.empty());
  const std::size_t n = coefficients.size() - 1;
  // de Casteljau evaluation: numerically stable for any degree.
  std::vector<double> beta(coefficients.begin(), coefficients.end());
  for (std::size_t level = 1; level <= n; ++level) {
    for (std::size_t i = 0; i <= n - level; ++i) {
      beta[i] = beta[i] * (1.0 - x) + beta[i + 1] * x;
    }
  }
  return beta[0];
}

double resc_expected(sc::span<const double> coefficients,
                     sc::span<const double> copy_values) {
  assert(coefficients.size() == copy_values.size() + 1);
  // Poisson-binomial DP: dist[k] = P(k of the copies emit 1 this cycle).
  std::vector<double> dist(copy_values.size() + 1, 0.0);
  dist[0] = 1.0;
  for (std::size_t c = 0; c < copy_values.size(); ++c) {
    const double p = std::clamp(copy_values[c], 0.0, 1.0);
    for (std::size_t k = c + 1; k > 0; --k) {
      dist[k] = dist[k] * (1.0 - p) + dist[k - 1] * p;
    }
    dist[0] *= 1.0 - p;
  }
  double expected = 0.0;
  for (std::size_t k = 0; k < dist.size(); ++k) {
    expected += dist[k] * coefficients[k];
  }
  return expected;
}

Bitstream resc_evaluate(sc::span<const Bitstream> copies,
                        sc::span<const Bitstream> coefficient_streams) {
  assert(!copies.empty());
  assert(coefficient_streams.size() == copies.size() + 1);
  const std::size_t n = copies.front().size();
  Bitstream out(n);
  for (std::size_t t = 0; t < n; ++t) {
    std::size_t count = 0;
    for (const Bitstream& copy : copies) {
      assert(copy.size() == n);
      count += copy.get(t) ? 1 : 0;
    }
    if (coefficient_streams[count].get(t)) out.set(t, true);
  }
  return out;
}

double resc_apply(const std::function<double(double)>& f, double x,
                  const RescConfig& config) {
  const std::size_t n = config.stream_length;
  const auto natural = static_cast<std::uint32_t>(1u << config.sng_width);
  const std::uint32_t level = unipolar_level(x, natural);

  // --- copies of x per strategy ------------------------------------------
  std::vector<Bitstream> copies;
  copies.reserve(config.degree);
  switch (config.strategy) {
    case CopyStrategy::kIndependentSources: {
      // One private low-discrepancy source per copy (distinct Sobol
      // dimensions; the hardware-expensive reference).
      for (std::size_t k = 0; k < config.degree; ++k) {
        convert::Sng sng(std::make_unique<rng::Sobol>(
            config.sng_width, static_cast<unsigned>(1 + k)));
        copies.push_back(sng.generate(level, n));
      }
      break;
    }
    case CopyStrategy::kSharedSource: {
      convert::Sng sng(std::make_unique<rng::Lfsr>(config.sng_width,
                                                   config.seed));
      const Bitstream base = sng.generate(level, n);
      for (std::size_t k = 0; k < config.degree; ++k) copies.push_back(base);
      break;
    }
    case CopyStrategy::kDecorrelatorChain: {
      convert::Sng sng(std::make_unique<rng::Lfsr>(config.sng_width,
                                                   config.seed));
      Bitstream current = sng.generate(level, n);
      copies.push_back(current);
      for (std::size_t k = 1; k < config.degree; ++k) {
        core::ShuffleBuffer buffer(
            config.shuffle_depth,
            std::make_unique<rng::Lfsr>(
                config.sng_width,
                config.seed + 13 * static_cast<std::uint32_t>(k)));
        current = core::apply(buffer, current);
        copies.push_back(current);
      }
      break;
    }
  }

  // --- coefficient streams (constants; private LFSR bank) -----------------
  const std::vector<double> coefficients =
      bernstein_coefficients(f, config.degree);
  std::vector<Bitstream> coefficient_streams;
  coefficient_streams.reserve(coefficients.size());
  for (std::size_t i = 0; i < coefficients.size(); ++i) {
    convert::Sng sng(std::make_unique<rng::Lfsr>(
        config.sng_width,
        config.seed + 101 * static_cast<std::uint32_t>(i + 1)));
    coefficient_streams.push_back(
        sng.generate(unipolar_level(coefficients[i], natural), n));
  }

  return resc_evaluate(copies, coefficient_streams).value();
}

}  // namespace sc::func
