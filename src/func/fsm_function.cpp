#include "func/fsm_function.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sc::func {

SaturatingCounter::SaturatingCounter(unsigned states)
    : states_(states), state_(states / 2) {
  assert(states >= 2 && states % 2 == 0);
}

unsigned SaturatingCounter::step(bool up) {
  if (up) {
    if (state_ + 1 < states_) ++state_;
  } else {
    if (state_ > 0) --state_;
  }
  return state_;
}

void SaturatingCounter::reset() { state_ = states_ / 2; }

Bitstream stanh(const Bitstream& x, unsigned states) {
  Stanh unit(states);
  Bitstream out;
  out.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.push_back(unit.step(x.get(i)));
  }
  return out;
}

double stanh_value(double v, unsigned states) {
  return std::tanh(static_cast<double>(states) / 2.0 * v);
}

double sexp_value(double v, unsigned states, unsigned g) {
  (void)states;  // the state count shapes the approximation, not the target
  if (v <= 0.0) return 1.0;
  return std::clamp(std::exp(-2.0 * static_cast<double>(g) * v), 0.0, 1.0);
}

Bitstream sexp(const Bitstream& x, unsigned states, unsigned g) {
  Sexp unit(states, g);
  Bitstream out;
  out.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out.push_back(unit.step(x.get(i)));
  }
  return out;
}

}  // namespace sc::func
