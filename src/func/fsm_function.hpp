/// \file fsm_function.hpp
/// Classic FSM-based SC function units (Brown & Card 2001): a saturating
/// up/down counter whose state thresholds realize nonlinear functions of a
/// bipolar stream - stochastic tanh ("stanh") and a bounded exponential
/// ("sexp").
///
/// These are standard SC library blocks the paper's circuits compose with.
/// Caveat (verified in tests/func_test.cpp): the Brown-Card analysis
/// assumes i.i.d. Bernoulli input bits.  Low-discrepancy streams (VDC,
/// Sobol) are maximally *anti*-autocorrelated - at p = 0.5 a VDC stream
/// alternates 1,0,1,0 deterministically, which parks the counter at the
/// threshold and saturates the output.  Feed these units LFSR- or
/// mt19937-generated streams, or re-randomize with a shuffle buffer first
/// (one more place the paper's decorrelator earns its keep).

#pragma once

#include <cstdint>

#include "bitstream/bitstream.hpp"

namespace sc::func {

/// Saturating up/down counter FSM with `states` states (even).
/// Input 1 counts up, input 0 counts down, clamped to [0, states-1].
class SaturatingCounter {
 public:
  explicit SaturatingCounter(unsigned states);

  /// Consumes one input bit, returns the new state.
  unsigned step(bool up);

  [[nodiscard]] unsigned state() const { return state_; }
  [[nodiscard]] unsigned states() const { return states_; }
  void reset();

 private:
  unsigned states_;
  unsigned state_;
};

/// Stochastic tanh: output 1 iff the counter sits in the upper half.
/// For a bipolar input v, the output's bipolar value approximates
/// tanh((states/2) * v)  (Brown & Card).
class Stanh {
 public:
  explicit Stanh(unsigned states) : counter_(states) {}
  bool step(bool in) {
    return counter_.step(in) >= counter_.states() / 2;
  }
  void reset() { counter_.reset(); }

 private:
  SaturatingCounter counter_;
};

/// Whole-stream stanh.
Bitstream stanh(const Bitstream& x, unsigned states);

/// Stochastic exponential: output 0 only in the top `g` states, giving
/// p(out) ~ exp(-2 g v) for bipolar v > 0 (Brown & Card's sexp).
class Sexp {
 public:
  Sexp(unsigned states, unsigned g) : counter_(states), g_(g) {}
  bool step(bool in) {
    return counter_.step(in) < counter_.states() - g_;
  }
  void reset() { counter_.reset(); }

 private:
  SaturatingCounter counter_;
  unsigned g_;
};

/// Whole-stream sexp.
Bitstream sexp(const Bitstream& x, unsigned states, unsigned g);

/// Brown–Card analytic target of the stanh unit: tanh((states/2) * v) for
/// a bipolar input v in [-1, 1].  Reference semantics for error
/// measurement (the FSM approximates this; the approximation error is part
/// of the unit, not of the executor).
double stanh_value(double v, unsigned states);

/// Analytic target of the sexp unit: exp(-2 g v) for bipolar v > 0,
/// saturating at 1 for v <= 0 (Brown & Card), clamped to [0, 1].
double sexp_value(double v, unsigned states, unsigned g);

}  // namespace sc::func
