/// \file bernstein.hpp
/// Bernstein-polynomial SC function synthesis (Qian & Riedel's ReSC
/// architecture): evaluate f(x) = sum_i b_i * B_{i,n}(x) with an n-input
/// adder (population count of n copies of x) selecting among n+1
/// coefficient streams.
///
/// The architecture *requires n mutually uncorrelated copies of x* - the
/// canonical consumer for the paper's decorrelator.  This module evaluates
/// the polynomial for three copy-generation strategies so the decorrelator's
/// value can be quantified end to end:
///   * kIndependentSources - one private RNG per copy (the expensive ideal)
///   * kSharedSource       - one RNG for all copies (broken: the popcount
///                           collapses to 0 or n every cycle)
///   * kDecorrelatorChain  - one RNG + a chain of shuffle buffers making
///                           each successive copy from the previous one
///                           (the paper-style fix: tiny hardware, no
///                           binary conversion)

#pragma once

#include <cstddef>
#include <functional>
#include "common/span.hpp"
#include <vector>

#include "bitstream/bitstream.hpp"

namespace sc::func {

/// Bernstein coefficients of the degree-n approximation of f on [0,1]
/// using the Bernstein operator: b_i = f(i / n), clamped to [0, 1].
/// (B_n f converges uniformly to f; for smooth f the error is O(1/n).)
std::vector<double> bernstein_coefficients(
    const std::function<double(double)>& f, std::size_t degree);

/// Reference evaluation of sum_i b_i B_{i,n}(x) in floating point.
double bernstein_value(sc::span<const double> coefficients, double x);

/// Expected ReSC output for *independent* copies with possibly unequal
/// values: E[out] = sum_k P(popcount = k) * b_k, with the popcount
/// distribution the Poisson-binomial of the copy values
/// (copies.size() = coefficients.size() - 1).  Equals
/// bernstein_value(coefficients, x) when every copy value is x.
double resc_expected(sc::span<const double> coefficients,
                     sc::span<const double> copy_values);

/// Core ReSC evaluation: per cycle, count the 1s among the x-copies and
/// emit that coefficient stream's bit.  copies.size() = n,
/// coefficient_streams.size() = n + 1, all streams one length.
Bitstream resc_evaluate(sc::span<const Bitstream> copies,
                        sc::span<const Bitstream> coefficient_streams);

/// How the n copies of x are produced (see file comment).
enum class CopyStrategy {
  kIndependentSources,
  kSharedSource,
  kDecorrelatorChain,
};

/// Parameters for the self-contained evaluator.
struct RescConfig {
  std::size_t degree = 4;          ///< n (copies of x)
  std::size_t stream_length = 256;
  unsigned sng_width = 8;
  CopyStrategy strategy = CopyStrategy::kDecorrelatorChain;
  std::size_t shuffle_depth = 8;   ///< decorrelator-chain buffer depth
  std::uint32_t seed = 5;
};

/// Generates copies + coefficient streams and evaluates f at x.
/// Coefficient streams always come from private LFSRs (they are constants,
/// shared across all evaluations in real designs).
double resc_apply(const std::function<double(double)>& f, double x,
                  const RescConfig& config);

}  // namespace sc::func
