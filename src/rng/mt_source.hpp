/// \file mt_source.hpp
/// mt19937-backed random source, for software baselines and property tests.
///
/// Not a hardware-realistic SC source (a Mersenne Twister is enormous next
/// to an LFSR); used as the "ideal i.i.d." reference when measuring how far
/// the hardware sequences deviate from true randomness.

#pragma once

#include <random>
#include <sstream>

#include "rng/random_source.hpp"

namespace sc::rng {

/// Uniform w-bit integers from std::mt19937.
class Mt19937Source final : public RandomSource {
 public:
  explicit Mt19937Source(unsigned width, std::uint32_t seed = 1)
      : width_(width), seed_(seed), gen_(seed) {
    assert(width >= 1 && width <= 32);
  }

  std::uint32_t next() override {
    const std::uint32_t raw = gen_();
    return width_ == 32 ? raw : (raw & ((1u << width_) - 1u));
  }
  void fill(std::uint32_t* out, std::size_t n) override {
    const std::uint32_t mask = width_ == 32 ? ~0u : (1u << width_) - 1u;
    for (std::size_t i = 0; i < n; ++i) out[i] = gen_() & mask;
  }
  [[nodiscard]] unsigned width() const override { return width_; }
  void reset() override { gen_.seed(seed_); }
  [[nodiscard]] std::unique_ptr<RandomSource> clone() const override {
    return std::make_unique<Mt19937Source>(*this);
  }
  [[nodiscard]] std::string name() const override {
    std::ostringstream os;
    os << "mt19937." << width_ << "(seed=" << seed_ << ")";
    return os.str();
  }

 private:
  unsigned width_;
  std::uint32_t seed_;
  std::mt19937 gen_;
};

}  // namespace sc::rng
