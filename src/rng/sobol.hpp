/// \file sobol.hpp
/// Sobol low-discrepancy sequence (gray-code construction, Joe-Kuo
/// direction numbers for the first dimensions).
///
/// Liu & Han (DATE 2017), cited by the paper, show Sobol sequences make
/// energy-efficient SC number sources.  Dimension 1 is the plain
/// bit-reversal (Van der Corput) sequence; higher dimensions use primitive-
/// polynomial direction vectors and are mutually low-discrepancy, so two
/// different dimensions give nearly uncorrelated SNs.

#pragma once

#include <array>
#include <cstdint>

#include "rng/random_source.hpp"

namespace sc::rng {

/// Gray-code Sobol sequence generator for a single dimension.
class Sobol final : public RandomSource {
 public:
  static constexpr unsigned kMaxDimension = 12;
  static constexpr unsigned kDirectionBits = 32;

  /// \param width     output width in bits (1..32); the top `width` bits of
  ///                  the 32-bit Sobol state are emitted
  /// \param dimension Sobol dimension in [1, kMaxDimension]
  explicit Sobol(unsigned width, unsigned dimension = 1);

  std::uint32_t next() override;
  void fill(std::uint32_t* out, std::size_t n) override;
  [[nodiscard]] unsigned width() const override { return width_; }
  void reset() override;
  [[nodiscard]] std::unique_ptr<RandomSource> clone() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] unsigned dimension() const { return dimension_; }

 private:
  unsigned width_;
  unsigned dimension_;
  std::array<std::uint32_t, kDirectionBits> v_{};  // direction vectors
  std::uint32_t state_ = 0;
  std::uint64_t index_ = 0;
};

}  // namespace sc::rng
