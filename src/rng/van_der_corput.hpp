/// \file van_der_corput.hpp
/// Base-2 Van der Corput low-discrepancy sequence.
///
/// The w-bit VDC sequence is the bit-reversal of a w-bit counter: it visits
/// every value in [0, 2^w) exactly once per period with optimally even
/// coverage of prefixes.  The paper (following Alaghi & Hayes DATE'14) uses
/// VDC as a high-quality deterministic SN generator: a comparator SNG driven
/// by VDC produces streams whose value is *exact* for every level.

#pragma once

#include <cstdint>

#include "rng/random_source.hpp"

namespace sc::rng {

/// Bit-reversed-counter Van der Corput sequence.
class VanDerCorput final : public RandomSource {
 public:
  /// \param width  output width in bits (1..32)
  /// \param offset starting counter value (phase of the sequence)
  explicit VanDerCorput(unsigned width, std::uint32_t offset = 0);

  std::uint32_t next() override;
  void fill(std::uint32_t* out, std::size_t n) override;
  [[nodiscard]] unsigned width() const override { return width_; }
  void reset() override { counter_ = offset_; }
  [[nodiscard]] std::unique_ptr<RandomSource> clone() const override;
  [[nodiscard]] std::string name() const override;

  /// Reverses the low `width` bits of v.
  static std::uint32_t reverse_bits(std::uint32_t v, unsigned width);

 private:
  unsigned width_;
  std::uint32_t offset_;
  std::uint32_t counter_;
  std::uint32_t mask_;
};

}  // namespace sc::rng
