/// \file halton.hpp
/// Base-b Halton (radical inverse) low-discrepancy sequence.
///
/// The radical inverse of counter t in base b mirrors the base-b digits of t
/// about the radix point; scaled to w bits it yields a low-discrepancy
/// integer sequence.  Base 2 coincides with the Van der Corput sequence.
/// The paper's Table II/III experiments use a base-3 Halton sequence as the
/// second, uncorrelated-by-construction source next to base-2 VDC.

#pragma once

#include <cstdint>

#include "rng/random_source.hpp"

namespace sc::rng {

/// Radical-inverse sequence in an arbitrary integer base >= 2.
class Halton final : public RandomSource {
 public:
  /// \param width  output width in bits (1..31)
  /// \param base   radix of the radical inverse (>= 2); prime bases give the
  ///               classic Halton sequence
  /// \param offset starting counter value (phase)
  explicit Halton(unsigned width, unsigned base = 3, std::uint32_t offset = 0);

  std::uint32_t next() override;
  void fill(std::uint32_t* out, std::size_t n) override;
  [[nodiscard]] unsigned width() const override { return width_; }
  void reset() override { counter_ = offset_; }
  [[nodiscard]] std::unique_ptr<RandomSource> clone() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] unsigned base() const { return base_; }

  /// Radical inverse of t in the given base, as a fraction in [0, 1).
  static double radical_inverse(std::uint64_t t, unsigned base);

 private:
  unsigned width_;
  unsigned base_;
  std::uint32_t offset_;
  std::uint64_t counter_;
};

}  // namespace sc::rng
