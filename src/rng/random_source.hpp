/// \file random_source.hpp
/// Interface for the number sequences that drive stochastic-number
/// generators, shuffle buffers, and MUX select streams.
///
/// A RandomSource emits one w-bit integer per clock cycle, uniformly covering
/// [0, 2^w).  The paper's evaluation uses four families:
///  * LFSR            - classic pseudo-random shift register (sc::rng::Lfsr)
///  * Van der Corput  - base-2 low-discrepancy sequence (bit-reversed counter)
///  * Halton          - base-b low-discrepancy sequence (radical inverse)
///  * Sobol           - direction-vector low-discrepancy sequence
/// plus deterministic counters and mt19937 for tests.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace sc::rng {

/// Abstract per-cycle integer sequence in [0, 2^width()).
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Next value of the sequence.  Advances internal state.
  virtual std::uint32_t next() = 0;

  /// Fills out[0..n) with the next n values — identical to n next() calls.
  /// The default loops over next(); sources with cheap update rules
  /// override it with a non-virtual loop so block consumers (the kernel
  /// layer) pay one virtual call per block instead of one per cycle.
  virtual void fill(std::uint32_t* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
  }

  // Word API: the RNG hot paths of the word-parallel kernels.  Each call
  // is sequence-identical to drawing nbits/n values with next() and
  // post-processing them; the defaults (random_source.cpp) block-fill and
  // route through the SIMD shim, and sources with replayable structure
  // (rng::Lfsr) override them with word-at-a-time implementations.  The
  // packed outputs place bit i at words[i/64] bit i%64; callers pass
  // zeroed destinations (bits are OR-ed in) and word-aligned starts.

  /// ORs comparator-SNG bits into words: bit i = (value_i < level), with
  /// level in [0, 2^width()] (64-bit so full scale does not wrap).
  virtual void fill_compare(std::uint64_t* words, std::size_t nbits,
                            std::uint64_t level);

  /// ORs regeneration bits into words: bit i = (int32(value_i) <
  /// thresh[i]).  thresh values must be < 2^15 (TFM estimates at the
  /// precisions the word kernels accept).
  virtual void fill_compare_trace(std::uint64_t* words,
                                  const std::uint16_t* thresh,
                                  std::size_t nbits);

  /// Fills out[0..n) with value_i % bound, narrowed to bytes; bound in
  /// [1, 255] (shuffle-buffer address draws).
  virtual void fill_indices(std::uint8_t* out, std::size_t n,
                            std::uint32_t bound);

  /// Output width in bits (1..32).  next() < 2^width().
  [[nodiscard]] virtual unsigned width() const = 0;

  /// Restarts the sequence from its initial state.
  virtual void reset() = 0;

  /// Deep copy preserving current state.
  [[nodiscard]] virtual std::unique_ptr<RandomSource> clone() const = 0;

  /// Human-readable identification, e.g. "lfsr8(seed=0x1)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Range of the source: 2^width().
  [[nodiscard]] std::uint64_t range() const { return std::uint64_t{1} << width(); }

  /// Next value scaled to [0, 1).
  double next_unit() {
    return static_cast<double>(next()) / static_cast<double>(range());
  }
};

/// Owning handle used across module boundaries.
using RandomSourcePtr = std::unique_ptr<RandomSource>;

}  // namespace sc::rng
