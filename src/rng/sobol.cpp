#include "rng/sobol.hpp"

#include "common/bitops.hpp"
#include <cassert>
#include <sstream>
#include <vector>

namespace sc::rng {
namespace {

/// Joe-Kuo (new-joe-kuo-6) primitive polynomial data for dimensions 2..12.
/// s = polynomial degree, a = encoded interior coefficients, m = initial
/// odd direction integers m_1..m_s.  Dimension 1 is the degenerate
/// bit-reversal sequence handled separately.
struct JoeKuoEntry {
  unsigned s;
  std::uint32_t a;
  std::array<std::uint32_t, 8> m;
};

constexpr std::array<JoeKuoEntry, 11> kJoeKuo = {{
    {1, 0, {1}},                    // dim 2
    {2, 1, {1, 3}},                 // dim 3
    {3, 1, {1, 3, 1}},              // dim 4
    {3, 2, {1, 1, 1}},              // dim 5
    {4, 1, {1, 1, 3, 3}},           // dim 6
    {4, 4, {1, 3, 5, 13}},          // dim 7
    {5, 2, {1, 1, 5, 5, 17}},       // dim 8
    {5, 4, {1, 1, 5, 5, 5}},        // dim 9
    {5, 7, {1, 1, 7, 11, 19}},      // dim 10
    {6, 2, {1, 1, 5, 1, 1, 1}},     // dim 11
    {6, 13, {1, 1, 1, 3, 11, 17}},  // dim 12
}};

}  // namespace

Sobol::Sobol(unsigned width, unsigned dimension)
    : width_(width), dimension_(dimension) {
  assert(width >= 1 && width <= 32);
  assert(dimension >= 1 && dimension <= kMaxDimension);

  if (dimension == 1) {
    // First Sobol dimension: v_k = 2^(32-k), i.e. bit reversal.
    for (unsigned k = 0; k < kDirectionBits; ++k) {
      v_[k] = 1u << (kDirectionBits - 1 - k);
    }
  } else {
    const JoeKuoEntry& e = kJoeKuo[dimension - 2];
    const unsigned s = e.s;
    for (unsigned k = 0; k < kDirectionBits; ++k) {
      if (k < s) {
        v_[k] = e.m[k] << (kDirectionBits - 1 - k);
      } else {
        std::uint32_t value = v_[k - s] ^ (v_[k - s] >> s);
        for (unsigned i = 1; i < s; ++i) {
          if ((e.a >> (s - 1 - i)) & 1u) value ^= v_[k - i];
        }
        v_[k] = value;
      }
    }
  }
}

std::uint32_t Sobol::next() {
  const std::uint32_t out = state_ >> (kDirectionBits - width_);
  // Gray-code update: flip with the direction vector indexed by the
  // position of the lowest zero... equivalently lowest set bit of index+1.
  const unsigned c =
      static_cast<unsigned>(sc::countr_zero64(~index_));  // lowest 0 of index
  state_ ^= v_[c];
  ++index_;
  return out;
}

void Sobol::fill(std::uint32_t* out, std::size_t n) {
  const unsigned shift = kDirectionBits - width_;
  std::uint32_t s = state_;
  std::uint64_t idx = index_;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = s >> shift;
    const unsigned c = static_cast<unsigned>(sc::countr_zero64(~idx));
    s ^= v_[c];
    ++idx;
  }
  state_ = s;
  index_ = idx;
}

void Sobol::reset() {
  state_ = 0;
  index_ = 0;
}

std::unique_ptr<RandomSource> Sobol::clone() const {
  return std::make_unique<Sobol>(*this);
}

std::string Sobol::name() const {
  std::ostringstream os;
  os << "sobol.d" << dimension_ << "." << width_;
  return os.str();
}

}  // namespace sc::rng
