#include "rng/lfsr.hpp"

#include <array>
#include "common/bitops.hpp"
#include <cassert>
#include <sstream>

namespace sc::rng {
namespace {

/// Maximal-period feedback taps for Fibonacci LFSRs of width 3..32
/// (XAPP052-style tap positions, stored as a mask with bit p-1 set for each
/// 1-indexed tap position p; feedback is the XOR of the tapped bits and is
/// shifted into the LSB).
constexpr std::array<std::uint32_t, 33> kTapTable = [] {
  std::array<std::uint32_t, 33> t{};
  auto mask = [](std::initializer_list<unsigned> taps) {
    std::uint32_t m = 0;
    for (unsigned p : taps) m |= 1u << (p - 1);
    return m;
  };
  t[3] = mask({3, 2});
  t[4] = mask({4, 3});
  t[5] = mask({5, 3});
  t[6] = mask({6, 5});
  t[7] = mask({7, 6});
  t[8] = mask({8, 6, 5, 4});
  t[9] = mask({9, 5});
  t[10] = mask({10, 7});
  t[11] = mask({11, 9});
  t[12] = mask({12, 6, 4, 1});
  t[13] = mask({13, 4, 3, 1});
  t[14] = mask({14, 5, 3, 1});
  t[15] = mask({15, 14});
  t[16] = mask({16, 15, 13, 4});
  t[17] = mask({17, 14});
  t[18] = mask({18, 11});
  t[19] = mask({19, 6, 2, 1});
  t[20] = mask({20, 17});
  t[21] = mask({21, 19});
  t[22] = mask({22, 21});
  t[23] = mask({23, 18});
  t[24] = mask({24, 23, 22, 17});
  t[25] = mask({25, 22});
  t[26] = mask({26, 6, 2, 1});
  t[27] = mask({27, 5, 2, 1});
  t[28] = mask({28, 25});
  t[29] = mask({29, 27});
  t[30] = mask({30, 6, 4, 1});
  t[31] = mask({31, 28});
  t[32] = mask({32, 22, 2, 1});
  return t;
}();

}  // namespace

std::uint32_t Lfsr::maximal_taps(unsigned width) {
  assert(width >= 3 && width <= 32);
  return kTapTable[width];
}

Lfsr::Lfsr(unsigned width, std::uint32_t seed, unsigned rotation)
    : width_(width),
      rotation_(rotation % width),
      taps_(maximal_taps(width)),
      mask_(width == 32 ? ~0u : (1u << width) - 1u) {
  seed &= mask_;
  if (seed == 0) seed = 1;  // the all-zero state is a fixed point
  seed_ = seed;
  state_ = seed;
}

std::uint32_t Lfsr::next() {
  const std::uint32_t out = state_;
  const std::uint32_t feedback =
      static_cast<std::uint32_t>(sc::popcount32(state_ & taps_) & 1);
  state_ = ((state_ << 1) | feedback) & mask_;
  if (rotation_ == 0) return out;
  return ((out >> rotation_) | (out << (width_ - rotation_))) & mask_;
}

std::unique_ptr<RandomSource> Lfsr::clone() const {
  return std::make_unique<Lfsr>(*this);
}

std::string Lfsr::name() const {
  std::ostringstream os;
  os << "lfsr" << width_ << "(seed=0x" << std::hex << seed_;
  if (rotation_ != 0) os << std::dec << ",rot=" << rotation_;
  os << ")";
  return os.str();
}

}  // namespace sc::rng
