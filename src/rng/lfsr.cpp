#include "rng/lfsr.hpp"

#include <array>
#include "common/bitops.hpp"
#include "common/simd.hpp"
#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace sc::rng {
namespace {

/// Maximal-period feedback taps for Fibonacci LFSRs of width 3..32
/// (XAPP052-style tap positions, stored as a mask with bit p-1 set for each
/// 1-indexed tap position p; feedback is the XOR of the tapped bits and is
/// shifted into the LSB).
constexpr std::array<std::uint32_t, 33> kTapTable = [] {
  std::array<std::uint32_t, 33> t{};
  auto mask = [](std::initializer_list<unsigned> taps) {
    std::uint32_t m = 0;
    for (unsigned p : taps) m |= 1u << (p - 1);
    return m;
  };
  t[3] = mask({3, 2});
  t[4] = mask({4, 3});
  t[5] = mask({5, 3});
  t[6] = mask({6, 5});
  t[7] = mask({7, 6});
  t[8] = mask({8, 6, 5, 4});
  t[9] = mask({9, 5});
  t[10] = mask({10, 7});
  t[11] = mask({11, 9});
  t[12] = mask({12, 6, 4, 1});
  t[13] = mask({13, 4, 3, 1});
  t[14] = mask({14, 5, 3, 1});
  t[15] = mask({15, 14});
  t[16] = mask({16, 15, 13, 4});
  t[17] = mask({17, 14});
  t[18] = mask({18, 11});
  t[19] = mask({19, 6, 2, 1});
  t[20] = mask({20, 17});
  t[21] = mask({21, 19});
  t[22] = mask({22, 21});
  t[23] = mask({23, 18});
  t[24] = mask({24, 23, 22, 17});
  t[25] = mask({25, 22});
  t[26] = mask({26, 6, 2, 1});
  t[27] = mask({27, 5, 2, 1});
  t[28] = mask({28, 25});
  t[29] = mask({29, 27});
  t[30] = mask({30, 6, 4, 1});
  t[31] = mask({31, 28});
  t[32] = mask({32, 22, 2, 1});
  return t;
}();

/// One Fibonacci step (the update inside next(), as a free function).
inline std::uint32_t fib_step(std::uint32_t state, std::uint32_t taps,
                              std::uint32_t mask) {
  const auto feedback =
      static_cast<std::uint32_t>(sc::popcount32(state & taps) & 1);
  return ((state << 1) | feedback) & mask;
}

/// Lanes advanced in parallel by fill(): the register update is linear
/// over GF(2), so "advance kLeapLanes steps" is a matrix A^kLeapLanes that
/// byte-sliced tables apply in 4 lookups + 3 XORs.  Eight lanes starting
/// at consecutive offsets then emit the exact next()-sequence without the
/// per-step feedback dependency chain, which is what makes block fills
/// several times faster than serial stepping.
constexpr unsigned kLeapLanes = 8;

struct LeapTable {
  std::uint32_t bytes[4][256];

  [[nodiscard]] std::uint32_t advance(std::uint32_t state) const {
    return bytes[0][state & 0xFFu] ^ bytes[1][(state >> 8) & 0xFFu] ^
           bytes[2][(state >> 16) & 0xFFu] ^ bytes[3][state >> 24];
  }
};

/// Jump-ahead tables per register width (taps and mask are functions of
/// the width, so the cache key is just the width).
const LeapTable& leap_table(unsigned width, std::uint32_t taps,
                            std::uint32_t mask) {
  static std::mutex mutex;
  static std::map<unsigned, std::unique_ptr<const LeapTable>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(width);
  if (it != cache.end()) return *it->second;

  auto table = std::make_unique<LeapTable>();
  std::uint32_t column[32] = {};
  for (unsigned bit = 0; bit < width; ++bit) {
    std::uint32_t s = std::uint32_t{1} << bit;
    for (unsigned k = 0; k < kLeapLanes; ++k) s = fib_step(s, taps, mask);
    column[bit] = s;
  }
  for (unsigned k = 0; k < 4; ++k) {
    for (unsigned b = 0; b < 256; ++b) {
      std::uint32_t v = 0;
      for (unsigned j = 0; j < 8; ++j) {
        const unsigned bit = k * 8 + j;
        if (((b >> j) & 1u) != 0 && bit < width) v ^= column[bit];
      }
      table->bytes[k][b] = v;
    }
  }
  const LeapTable& ref = *table;
  cache.emplace(width, std::move(table));
  return ref;
}

}  // namespace

std::uint32_t Lfsr::maximal_taps(unsigned width) {
  assert(width >= 3 && width <= 32);
  return kTapTable[width];
}

/// Memoized period of the register: `vals` holds one full cycle of emitted
/// values starting from the state the ring was built at, plus lazily-derived
/// replay caches (packed comparator bits for one level, reduced address
/// bytes for one bound, narrowed raw bytes).  The derived caches are keyed
/// by the parameter they were built for and rebuilt on change — in practice
/// each register instance serves one SNG level or one shuffle depth for its
/// whole life, so each cache is built once.
struct Lfsr::Ring {
  std::vector<std::uint16_t> vals;  ///< one period, rotation applied
  std::size_t period = 0;

  std::vector<std::uint64_t> cmp;  ///< bit i = vals[i] < cmp_level
  std::uint64_t cmp_level = 0;
  bool cmp_ready = false;

  std::vector<std::uint8_t> idx;  ///< vals[i] % idx_bound
  std::uint32_t idx_bound = 0;

  std::vector<std::uint8_t> bytes;  ///< vals narrowed (width <= 8 only)
  bool bytes_ready = false;
};

Lfsr::Lfsr(unsigned width, std::uint32_t seed, unsigned rotation)
    : width_(width),
      rotation_(rotation % width),
      taps_(maximal_taps(width)),
      mask_(width == 32 ? ~0u : (1u << width) - 1u) {
  seed &= mask_;
  if (seed == 0) seed = 1;  // the all-zero state is a fixed point
  seed_ = seed;
  state_ = seed;
}

Lfsr::Lfsr(const Lfsr& other)
    : width_(other.width_),
      rotation_(other.rotation_),
      taps_(other.taps_),
      seed_(other.seed_),
      state_(other.state_),
      mask_(other.mask_),
      ring_(other.ring_ ? std::make_unique<Ring>(*other.ring_) : nullptr),
      word_demand_(other.word_demand_),
      ring_failed_(other.ring_failed_),
      ring_pos_(other.ring_pos_),
      ring_pos_state_(other.ring_pos_state_),
      ring_pos_valid_(other.ring_pos_valid_) {}

Lfsr::~Lfsr() = default;

bool Lfsr::ring_ready(std::size_t demand) {
  if (ring_) return true;
  if (ring_failed_ || width_ > 16) return false;
  word_demand_ += demand;
  if (word_demand_ < mask_) return false;
  build_ring();
  return ring_ != nullptr;
}

void Lfsr::build_ring() {
  const std::uint32_t start = state_;
  auto ring = std::make_unique<Ring>();
  ring->vals.reserve(mask_);
  std::uint32_t s = start;
  do {
    if (ring->vals.size() >= mask_ && s != start) {
      // More states than the register has nonzero values without closing
      // the cycle: the orbit is not purely periodic from here (cannot
      // happen with the maximal-tap table, but guard rather than trust).
      ring_failed_ = true;
      return;
    }
    ring->vals.push_back(static_cast<std::uint16_t>(emit(s)));
    s = fib_step(s, taps_, mask_);
  } while (s != start);
  ring->period = ring->vals.size();
  ring_ = std::move(ring);
  ring_pos_ = 0;
  ring_pos_state_ = start;
  ring_pos_valid_ = true;
}

bool Lfsr::sync_ring_pos() {
  if (ring_pos_valid_ && ring_pos_state_ == state_) return true;
  // The register was stepped (next()) or reset since the last word call:
  // find the current state on the ring.  Emitted values are distinct on
  // the orbit (states are distinct and the rotation is a bijection), so
  // the scan is unambiguous.
  const std::uint16_t want = static_cast<std::uint16_t>(emit(state_));
  const auto& vals = ring_->vals;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (vals[i] == want) {
      ring_pos_ = i;
      ring_pos_state_ = state_;
      ring_pos_valid_ = true;
      return true;
    }
  }
  return false;  // off-orbit state: serve this call through the base path
}

void Lfsr::advance_ring(std::size_t n) {
  ring_pos_ = (ring_pos_ + n) % ring_->period;
  state_ = unemit(ring_->vals[ring_pos_]);
  ring_pos_state_ = state_;
  ring_pos_valid_ = true;
}

void Lfsr::fill_compare(std::uint64_t* words, std::size_t nbits,
                        std::uint64_t level) {
  if (nbits == 0) return;
  if (!ring_ready(nbits) || !sync_ring_pos()) {
    RandomSource::fill_compare(words, nbits, level);
    return;
  }
  Ring& ring = *ring_;
  if (level >= range()) {
    // All-ones output; just move the cursor nbits values forward.
    std::size_t w = 0;
    for (; (w + 1) * 64 <= nbits; ++w) words[w] = ~std::uint64_t{0};
    if (nbits % 64 != 0) words[w] |= (std::uint64_t{1} << (nbits % 64)) - 1;
    advance_ring(nbits);
    return;
  }
  if (!ring.cmp_ready || ring.cmp_level != level) {
    ring.cmp.assign((ring.period + 63) / 64, 0);
    for (std::size_t i = 0; i < ring.period; ++i) {
      ring.cmp[i >> 6] |=
          static_cast<std::uint64_t>(ring.vals[i] < level ? 1 : 0) << (i & 63);
    }
    ring.cmp_level = level;
    ring.cmp_ready = true;
  }
  std::size_t done = 0;
  std::size_t pos = ring_pos_;
  while (done < nbits) {
    const std::size_t take =
        nbits - done < ring.period - pos ? nbits - done : ring.period - pos;
    simd::or_copy_bits(words, done, ring.cmp.data(), pos, take);
    pos += take;
    if (pos == ring.period) pos = 0;
    done += take;
  }
  advance_ring(nbits);
}

void Lfsr::fill_compare_trace(std::uint64_t* words, const std::uint16_t* thresh,
                              std::size_t nbits) {
  if (nbits == 0) return;
  if (width_ > 8 || !ring_ready(nbits) || !sync_ring_pos()) {
    RandomSource::fill_compare_trace(words, thresh, nbits);
    return;
  }
  Ring& ring = *ring_;
  if (!ring.bytes_ready) {
    ring.bytes.assign(ring.vals.begin(), ring.vals.end());
    ring.bytes_ready = true;
  }
  constexpr std::size_t kBlock = 4096;
  std::uint8_t tmp[kBlock];
  std::size_t pos = ring_pos_;
  for (std::size_t i = 0; i < nbits; i += kBlock) {
    const std::size_t n = nbits - i < kBlock ? nbits - i : kBlock;
    std::size_t got = 0;
    while (got < n) {
      const std::size_t take =
          n - got < ring.period - pos ? n - got : ring.period - pos;
      std::memcpy(tmp + got, ring.bytes.data() + pos, take);
      pos += take;
      if (pos == ring.period) pos = 0;
      got += take;
    }
    simd::pack_compare_trace_u8(tmp, thresh + i, n, words + i / 64);
  }
  advance_ring(nbits);
}

void Lfsr::fill_indices(std::uint8_t* out, std::size_t n, std::uint32_t bound) {
  if (n == 0) return;
  if (!ring_ready(n) || !sync_ring_pos()) {
    RandomSource::fill_indices(out, n, bound);
    return;
  }
  Ring& ring = *ring_;
  if (ring.idx_bound != bound) {
    ring.idx.resize(ring.period);
    for (std::size_t i = 0; i < ring.period; ++i) {
      ring.idx[i] = static_cast<std::uint8_t>(ring.vals[i] % bound);
    }
    ring.idx_bound = bound;
  }
  std::size_t done = 0;
  std::size_t pos = ring_pos_;
  while (done < n) {
    const std::size_t take =
        n - done < ring.period - pos ? n - done : ring.period - pos;
    std::memcpy(out + done, ring.idx.data() + pos, take);
    pos += take;
    if (pos == ring.period) pos = 0;
    done += take;
  }
  advance_ring(n);
}

std::uint32_t Lfsr::next() {
  const std::uint32_t out = state_;
  const std::uint32_t feedback =
      static_cast<std::uint32_t>(sc::popcount32(state_ & taps_) & 1);
  state_ = ((state_ << 1) | feedback) & mask_;
  if (rotation_ == 0) return out;
  return ((out >> rotation_) | (out << (width_ - rotation_))) & mask_;
}

void Lfsr::fill(std::uint32_t* out, std::size_t n) {
  std::uint32_t state = state_;
  const std::uint32_t taps = taps_;
  const std::uint32_t mask = mask_;
  const unsigned rot = rotation_;
  const unsigned inv = width_ - rot;
  const auto emit = [rot, inv, mask](std::uint32_t s) {
    return rot == 0 ? s : (((s >> rot) | (s << inv)) & mask);
  };

  std::size_t i = 0;
  if (n >= 4 * kLeapLanes) {
    // Jump-ahead path: lane j holds the register kLeapLanes*r + j steps
    // ahead of state_, so each round emits kLeapLanes in-order values and
    // advances every lane independently (no cross-lane dependency chain).
    const LeapTable& leap = leap_table(width_, taps, mask);
    std::uint32_t lane[kLeapLanes];
    lane[0] = state;
    for (unsigned j = 1; j < kLeapLanes; ++j) {
      lane[j] = fib_step(lane[j - 1], taps, mask);
    }
    for (; i + kLeapLanes <= n; i += kLeapLanes) {
      for (unsigned j = 0; j < kLeapLanes; ++j) out[i + j] = emit(lane[j]);
      for (unsigned j = 0; j < kLeapLanes; ++j) {
        lane[j] = leap.advance(lane[j]);
      }
    }
    state = lane[0];  // register after i = (n / kLeapLanes) * kLeapLanes steps
  }
  // Serial path: short fills and the sub-lane tail.
  for (; i < n; ++i) {
    out[i] = emit(state);
    state = fib_step(state, taps, mask);
  }
  state_ = state;
}

std::unique_ptr<RandomSource> Lfsr::clone() const {
  return std::make_unique<Lfsr>(*this);
}

std::string Lfsr::name() const {
  std::ostringstream os;
  os << "lfsr" << width_ << "(seed=0x" << std::hex << seed_;
  if (rotation_ != 0) os << std::dec << ",rot=" << rotation_;
  os << ")";
  return os.str();
}

}  // namespace sc::rng
