/// \file factory.hpp
/// Tagged construction of every RandomSource family, used by benchmarks and
/// experiment sweeps that iterate over RNG configurations (paper Table II).

#pragma once

#include <cstdint>
#include <string>

#include "rng/random_source.hpp"

namespace sc::rng {

/// The source families evaluated in the paper plus test-only extras.
enum class RngKind {
  kLfsr,          ///< maximal-length LFSR
  kVanDerCorput,  ///< base-2 bit-reversal sequence
  kHalton,        ///< base-b radical inverse (paper uses base 3)
  kSobol,         ///< direction-vector Sobol sequence
  kCounter,       ///< deterministic ramp (maximal positive correlation)
  kMt19937,       ///< software i.i.d. reference
};

/// Full description of a source instance.
struct RngSpec {
  RngKind kind = RngKind::kLfsr;
  unsigned width = 8;
  std::uint32_t seed = 1;   ///< LFSR seed / mt19937 seed / counter & sequence phase
  unsigned base = 3;        ///< Halton radix
  unsigned dimension = 1;   ///< Sobol dimension
  unsigned rotation = 0;    ///< LFSR output rotation
};

/// Instantiates the described source.
RandomSourcePtr make_rng(const RngSpec& spec);

/// Short family name, e.g. "LFSR", "VDC", "Halton".
std::string to_string(RngKind kind);

}  // namespace sc::rng
