/// \file lfsr.hpp
/// Maximal-length Fibonacci linear-feedback shift register.
///
/// The paper notes LFSRs are the traditional compact SC random source but
/// that different seeds / rotations are needed to keep streams uncorrelated.
/// This implementation supports widths 3..32 with known maximal-period tap
/// sets (period 2^w - 1; the all-zero state is unreachable).  The emitted
/// value is the full register contents, optionally bit-rotated so that many
/// decorrelated outputs can be drawn from one register (the standard
/// amortization trick the paper describes).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "rng/random_source.hpp"

namespace sc::rng {

/// Fibonacci LFSR over GF(2) with maximal-period taps.
///
/// Word API: an LFSR's state orbit is a pure cycle (the update is linear
/// and invertible), so once a consumer has demanded about one period of
/// values the register memoizes the whole period and serves the word-level
/// calls (fill_compare / fill_compare_trace / fill_indices) by replaying
/// precomputed rings — packed comparator bits, reduced address bytes —
/// word-at-a-time instead of re-deriving each value.  Replay is exact:
/// ring contents are recorded from next() itself, and the register state
/// is kept in lockstep with the ring position (any interleaved next() or
/// reset() just resynchronizes by state lookup).  Rings engage for widths
/// up to 16 (at most 2^16 - 1 entries); wider registers and cold starts
/// use the generic block-fill defaults.
class Lfsr final : public RandomSource {
 public:
  /// \param width    register width in bits (3..32)
  /// \param seed     initial state; must be nonzero in the low `width` bits
  ///                 (0 is remapped to 1, the conventional safe default)
  /// \param rotation output rotation in bits (models tapping the register at
  ///                 a different bit offset to obtain a decorrelated copy)
  explicit Lfsr(unsigned width, std::uint32_t seed = 1, unsigned rotation = 0);
  Lfsr(const Lfsr& other);
  ~Lfsr() override;

  std::uint32_t next() override;
  void fill(std::uint32_t* out, std::size_t n) override;
  void fill_compare(std::uint64_t* words, std::size_t nbits,
                    std::uint64_t level) override;
  void fill_compare_trace(std::uint64_t* words, const std::uint16_t* thresh,
                          std::size_t nbits) override;
  void fill_indices(std::uint8_t* out, std::size_t n,
                    std::uint32_t bound) override;
  [[nodiscard]] unsigned width() const override { return width_; }
  void reset() override { state_ = seed_; }
  [[nodiscard]] std::unique_ptr<RandomSource> clone() const override;
  [[nodiscard]] std::string name() const override;

  /// Feedback tap mask (XOR of tapped bits feeds bit width-1).
  [[nodiscard]] std::uint32_t taps() const { return taps_; }
  /// Current register state (for tests).
  [[nodiscard]] std::uint32_t state() const { return state_; }

  /// Maximal-period tap mask for a given width (3..32).
  static std::uint32_t maximal_taps(unsigned width);

 private:
  struct Ring;

  /// Emitted value for a register state (output rotation applied).
  [[nodiscard]] std::uint32_t emit(std::uint32_t state) const {
    if (rotation_ == 0) return state;
    return ((state >> rotation_) | (state << (width_ - rotation_))) & mask_;
  }
  /// Register state that emits `value` (inverse of emit()).
  [[nodiscard]] std::uint32_t unemit(std::uint32_t value) const {
    if (rotation_ == 0) return value;
    return ((value << rotation_) | (value >> (width_ - rotation_))) & mask_;
  }

  /// True once the period ring is built; accumulates demand and builds it
  /// lazily after about one period of word-API values has been requested
  /// (so short-stream consumers never pay the construction).
  bool ring_ready(std::size_t demand);
  void build_ring();
  /// Points the ring cursor at the current register state (cheap when
  /// nothing stepped the register since the last word-API call).
  bool sync_ring_pos();
  /// Moves the cursor n values forward and the register with it.
  void advance_ring(std::size_t n);

  unsigned width_;
  unsigned rotation_;
  std::uint32_t taps_;
  std::uint32_t seed_;
  std::uint32_t state_;
  std::uint32_t mask_;

  std::unique_ptr<Ring> ring_;
  std::uint64_t word_demand_ = 0;
  bool ring_failed_ = false;
  std::size_t ring_pos_ = 0;
  std::uint32_t ring_pos_state_ = 0;
  bool ring_pos_valid_ = false;
};

}  // namespace sc::rng
