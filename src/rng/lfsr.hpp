/// \file lfsr.hpp
/// Maximal-length Fibonacci linear-feedback shift register.
///
/// The paper notes LFSRs are the traditional compact SC random source but
/// that different seeds / rotations are needed to keep streams uncorrelated.
/// This implementation supports widths 3..32 with known maximal-period tap
/// sets (period 2^w - 1; the all-zero state is unreachable).  The emitted
/// value is the full register contents, optionally bit-rotated so that many
/// decorrelated outputs can be drawn from one register (the standard
/// amortization trick the paper describes).

#pragma once

#include <cstdint>

#include "rng/random_source.hpp"

namespace sc::rng {

/// Fibonacci LFSR over GF(2) with maximal-period taps.
class Lfsr final : public RandomSource {
 public:
  /// \param width    register width in bits (3..32)
  /// \param seed     initial state; must be nonzero in the low `width` bits
  ///                 (0 is remapped to 1, the conventional safe default)
  /// \param rotation output rotation in bits (models tapping the register at
  ///                 a different bit offset to obtain a decorrelated copy)
  explicit Lfsr(unsigned width, std::uint32_t seed = 1, unsigned rotation = 0);

  std::uint32_t next() override;
  void fill(std::uint32_t* out, std::size_t n) override;
  [[nodiscard]] unsigned width() const override { return width_; }
  void reset() override { state_ = seed_; }
  [[nodiscard]] std::unique_ptr<RandomSource> clone() const override;
  [[nodiscard]] std::string name() const override;

  /// Feedback tap mask (XOR of tapped bits feeds bit width-1).
  [[nodiscard]] std::uint32_t taps() const { return taps_; }
  /// Current register state (for tests).
  [[nodiscard]] std::uint32_t state() const { return state_; }

  /// Maximal-period tap mask for a given width (3..32).
  static std::uint32_t maximal_taps(unsigned width);

 private:
  unsigned width_;
  unsigned rotation_;
  std::uint32_t taps_;
  std::uint32_t seed_;
  std::uint32_t state_;
  std::uint32_t mask_;
};

}  // namespace sc::rng
