/// \file counter_source.hpp
/// Deterministic ramp sequence 0, 1, ..., 2^w - 1, 0, ...
///
/// A counter-driven comparator SNG emits all of a stream's 1s contiguously
/// ("unary ramp" encoding).  Two counter-generated streams are maximally
/// positively correlated (SCC = +1), which makes this source useful for
/// constructing correlated operands and for testing correlation-sensitive
/// circuits such as the XOR subtractor and CORDIV divider.

#pragma once

#include <cassert>
#include <sstream>

#include "rng/random_source.hpp"

namespace sc::rng {

/// Wrap-around w-bit up-counter.
class CounterSource final : public RandomSource {
 public:
  explicit CounterSource(unsigned width, std::uint32_t start = 0)
      : width_(width),
        mask_(width == 32 ? ~0u : (1u << width) - 1u),
        start_(start & mask_),
        state_(start & mask_) {
    assert(width >= 1 && width <= 32);
  }

  std::uint32_t next() override {
    const std::uint32_t out = state_;
    state_ = (state_ + 1) & mask_;
    return out;
  }
  void fill(std::uint32_t* out, std::size_t n) override {
    std::uint32_t s = state_;
    const std::uint32_t mask = mask_;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = s;
      s = (s + 1) & mask;
    }
    state_ = s;
  }
  [[nodiscard]] unsigned width() const override { return width_; }
  void reset() override { state_ = start_; }
  [[nodiscard]] std::unique_ptr<RandomSource> clone() const override {
    return std::make_unique<CounterSource>(*this);
  }
  [[nodiscard]] std::string name() const override {
    std::ostringstream os;
    os << "counter" << width_;
    if (start_ != 0) os << "(start=" << start_ << ")";
    return os.str();
  }

 private:
  unsigned width_;
  std::uint32_t mask_;
  std::uint32_t start_;
  std::uint32_t state_;
};

}  // namespace sc::rng
