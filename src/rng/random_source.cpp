#include "rng/random_source.hpp"

#include "common/simd.hpp"

namespace sc::rng {
namespace {

/// Values drawn per inner block by the default word-API implementations
/// (16 KiB of stack scratch, L1-resident).
constexpr std::size_t kBlock = 4096;

}  // namespace

void RandomSource::fill_compare(std::uint64_t* words, std::size_t nbits,
                                std::uint64_t level) {
  if (nbits == 0) return;
  if (level >= range()) {
    // Every value compares below a full-scale (or larger) level: set the
    // bits directly, but still advance the sequence by nbits draws.
    std::uint32_t tmp[kBlock];
    for (std::size_t i = 0; i < nbits; i += kBlock) {
      fill(tmp, nbits - i < kBlock ? nbits - i : kBlock);
    }
    std::size_t w = 0;
    for (; (w + 1) * 64 <= nbits; ++w) words[w] = ~std::uint64_t{0};
    if (nbits % 64 != 0) {
      words[w] |= (std::uint64_t{1} << (nbits % 64)) - 1;
    }
    return;
  }
  const auto level32 = static_cast<std::uint32_t>(level);
  std::uint32_t tmp[kBlock];
  for (std::size_t i = 0; i < nbits; i += kBlock) {
    const std::size_t n = nbits - i < kBlock ? nbits - i : kBlock;
    fill(tmp, n);
    simd::pack_compare_lt(tmp, n, level32, words + i / 64);
  }
}

void RandomSource::fill_compare_trace(std::uint64_t* words,
                                      const std::uint16_t* thresh,
                                      std::size_t nbits) {
  std::uint32_t tmp[kBlock];
  for (std::size_t i = 0; i < nbits; i += kBlock) {
    const std::size_t n = nbits - i < kBlock ? nbits - i : kBlock;
    fill(tmp, n);
    simd::pack_compare_trace(tmp, thresh + i, n, words + i / 64);
  }
}

void RandomSource::fill_indices(std::uint8_t* out, std::size_t n,
                                std::uint32_t bound) {
  std::uint32_t tmp[kBlock];
  for (std::size_t i = 0; i < n; i += kBlock) {
    const std::size_t take = n - i < kBlock ? n - i : kBlock;
    fill(tmp, take);
    simd::mod_bytes(tmp, take, bound, range(), out + i);
  }
}

}  // namespace sc::rng
