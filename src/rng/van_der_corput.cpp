#include "rng/van_der_corput.hpp"

#include <cassert>
#include <sstream>

namespace sc::rng {

VanDerCorput::VanDerCorput(unsigned width, std::uint32_t offset)
    : width_(width),
      offset_(offset),
      counter_(offset),
      mask_(width == 32 ? ~0u : (1u << width) - 1u) {
  assert(width >= 1 && width <= 32);
}

std::uint32_t VanDerCorput::reverse_bits(std::uint32_t v, unsigned width) {
  std::uint32_t out = 0;
  for (unsigned i = 0; i < width; ++i) {
    out = (out << 1) | ((v >> i) & 1u);
  }
  return out;
}

std::uint32_t VanDerCorput::next() {
  const std::uint32_t out = reverse_bits(counter_ & mask_, width_);
  ++counter_;
  return out;
}

void VanDerCorput::fill(std::uint32_t* out, std::size_t n) {
  // Note the counter increments unmasked (it only wraps at 2^32), exactly
  // as in next(); the mask applies to the reversed value.
  std::uint32_t c = counter_;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = reverse_bits(c & mask_, width_);
    ++c;
  }
  counter_ = c;
}

std::unique_ptr<RandomSource> VanDerCorput::clone() const {
  return std::make_unique<VanDerCorput>(*this);
}

std::string VanDerCorput::name() const {
  std::ostringstream os;
  os << "vdc" << width_;
  if (offset_ != 0) os << "(offset=" << offset_ << ")";
  return os.str();
}

}  // namespace sc::rng
