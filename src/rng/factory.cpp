#include "rng/factory.hpp"

#include "rng/counter_source.hpp"
#include "rng/halton.hpp"
#include "rng/lfsr.hpp"
#include "rng/mt_source.hpp"
#include "rng/sobol.hpp"
#include "rng/van_der_corput.hpp"

namespace sc::rng {

RandomSourcePtr make_rng(const RngSpec& spec) {
  switch (spec.kind) {
    case RngKind::kLfsr:
      return std::make_unique<Lfsr>(spec.width, spec.seed, spec.rotation);
    case RngKind::kVanDerCorput:
      return std::make_unique<VanDerCorput>(spec.width, spec.seed);
    case RngKind::kHalton:
      return std::make_unique<Halton>(spec.width, spec.base, spec.seed);
    case RngKind::kSobol:
      return std::make_unique<Sobol>(spec.width, spec.dimension);
    case RngKind::kCounter:
      return std::make_unique<CounterSource>(spec.width, spec.seed);
    case RngKind::kMt19937:
      return std::make_unique<Mt19937Source>(spec.width, spec.seed);
  }
  return nullptr;
}

std::string to_string(RngKind kind) {
  switch (kind) {
    case RngKind::kLfsr:
      return "LFSR";
    case RngKind::kVanDerCorput:
      return "VDC";
    case RngKind::kHalton:
      return "Halton";
    case RngKind::kSobol:
      return "Sobol";
    case RngKind::kCounter:
      return "Counter";
    case RngKind::kMt19937:
      return "MT19937";
  }
  return "?";
}

}  // namespace sc::rng
