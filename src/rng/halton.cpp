#include "rng/halton.hpp"

#include <cassert>
#include <cmath>
#include <sstream>

namespace sc::rng {

Halton::Halton(unsigned width, unsigned base, std::uint32_t offset)
    : width_(width), base_(base), offset_(offset), counter_(offset) {
  assert(width >= 1 && width <= 31);
  assert(base >= 2);
}

double Halton::radical_inverse(std::uint64_t t, unsigned base) {
  double scale = 1.0;
  double result = 0.0;
  while (t > 0) {
    scale /= static_cast<double>(base);
    result += scale * static_cast<double>(t % base);
    t /= base;
  }
  return result;
}

std::uint32_t Halton::next() {
  const double r = radical_inverse(counter_, base_);
  ++counter_;
  const auto scaled = static_cast<std::uint32_t>(
      r * static_cast<double>(std::uint64_t{1} << width_));
  // Guard against r * 2^w == 2^w from floating rounding.
  const std::uint32_t max = (width_ == 32 ? ~0u : (1u << width_) - 1u);
  return scaled > max ? max : scaled;
}

void Halton::fill(std::uint32_t* out, std::size_t n) {
  // Same float pipeline as next() (radical_inverse is in this TU and
  // inlines), so the block path is bit-identical to n next() calls.
  const double scale_w = static_cast<double>(std::uint64_t{1} << width_);
  const std::uint32_t max = (width_ == 32 ? ~0u : (1u << width_) - 1u);
  const std::uint64_t t0 = counter_;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = radical_inverse(t0 + i, base_);
    const auto scaled = static_cast<std::uint32_t>(r * scale_w);
    out[i] = scaled > max ? max : scaled;
  }
  counter_ = t0 + n;
}

std::unique_ptr<RandomSource> Halton::clone() const {
  return std::make_unique<Halton>(*this);
}

std::string Halton::name() const {
  std::ostringstream os;
  os << "halton" << base_ << "." << width_;
  if (offset_ != 0) os << "(offset=" << offset_ << ")";
  return os.str();
}

}  // namespace sc::rng
