#include "convert/regenerator.hpp"

#include <cassert>

namespace sc::convert {

Bitstream regenerate(const Bitstream& input, rng::RandomSource& source) {
  const std::size_t n = input.size();
  // S/D: recover the binary level.  The comparator threshold convention is
  // (r < level) with r in [0, 2^w); when n == 2^w the level equals the ones
  // count directly.  For other lengths the level is rescaled to the source
  // range so the re-encoded value matches the input value.
  const std::uint64_t ones = input.count_ones();
  std::uint64_t level = 0;
  if (n != 0) {
    level = (ones * source.range() + n / 2) / n;  // round to nearest
  }
  Bitstream out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(source.next() < level);
  }
  return out;
}

std::vector<Bitstream> regenerate_bus_correlated(
    const std::vector<Bitstream>& inputs, rng::RandomSource& shared_source) {
  std::vector<Bitstream> out;
  out.reserve(inputs.size());
  if (inputs.empty()) return out;
  const std::size_t n = inputs.front().size();
  // One shared RNG drives every comparator, so the per-cycle random value
  // must be identical across streams: generate the trace once.
  std::vector<std::uint32_t> trace(n);
  for (std::size_t i = 0; i < n; ++i) trace[i] = shared_source.next();

  for (const Bitstream& input : inputs) {
    assert(input.size() == n);
    const std::uint64_t ones = input.count_ones();
    const std::uint64_t level =
        n == 0 ? 0 : (ones * shared_source.range() + n / 2) / n;
    Bitstream stream;
    stream.reserve(n);
    for (std::size_t i = 0; i < n; ++i) stream.push_back(trace[i] < level);
    out.push_back(std::move(stream));
  }
  return out;
}

std::vector<Bitstream> regenerate_bus_uncorrelated(
    const std::vector<Bitstream>& inputs,
    const std::vector<rng::RandomSource*>& sources) {
  assert(inputs.size() == sources.size());
  std::vector<Bitstream> out;
  out.reserve(inputs.size());
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    assert(sources[k] != nullptr);
    out.push_back(regenerate(inputs[k], *sources[k]));
  }
  return out;
}

}  // namespace sc::convert
