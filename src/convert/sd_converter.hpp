/// \file sd_converter.hpp
/// Stochastic-to-digital (S/D) converter: the counter of paper Fig. 2f.
///
/// The S/D converter sums the 1s of an incoming stream into a binary
/// register; after N cycles the register holds B = p * N.  The per-cycle
/// form is what the cycle-level simulator instantiates; the whole-stream
/// helpers are the convenient functional equivalents.

#pragma once

#include <cstdint>

#include "bitstream/bitstream.hpp"

namespace sc::convert {

/// Per-cycle accumulating counter.
class SdConverter {
 public:
  /// Consumes one stream bit.
  void step(bool bit) {
    count_ += bit ? 1u : 0u;
    ++cycles_;
  }

  /// Number of 1s seen so far (the binary result B).
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Number of bits consumed.
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  /// Recovered unipolar value B / cycles (0 before any input).
  [[nodiscard]] double value() const {
    return cycles_ == 0
               ? 0.0
               : static_cast<double>(count_) / static_cast<double>(cycles_);
  }

  void reset() {
    count_ = 0;
    cycles_ = 0;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t cycles_ = 0;
};

/// Whole-stream S/D conversion: the binary level (count of 1s).
std::uint64_t to_binary(const Bitstream& stream);

}  // namespace sc::convert
