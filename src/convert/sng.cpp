#include "convert/sng.hpp"

#include <cassert>

#include "bitstream/encoding.hpp"

namespace sc::convert {

Sng::Sng(rng::RandomSourcePtr source)
    : source_(std::move(source)),
      natural_length_(static_cast<std::uint32_t>(
          std::uint64_t{1} << source_->width())) {
  assert(source_ != nullptr);
}

Bitstream Sng::generate(std::uint32_t level, std::size_t n) {
  assert(level <= natural_length_);
  Bitstream out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(source_->next() < level);
  }
  return out;
}

Bitstream Sng::generate_value(double p, std::size_t n) {
  return generate(unipolar_level(p, natural_length_), n);
}

}  // namespace sc::convert
