#include "convert/sng.hpp"

#include <cassert>

#include "bitstream/encoding.hpp"

namespace sc::convert {

Sng::Sng(rng::RandomSourcePtr source)
    : source_(std::move(source)),
      // Width can be 32, so the period must be computed (and kept) in 64
      // bits: a uint32 natural length wraps to 0 and every comparator test
      // `next() < 0` fails, yielding all-zero streams.
      natural_length_(std::uint64_t{1} << source_->width()) {
  assert(source_ != nullptr);
}

Bitstream Sng::generate(std::uint64_t level, std::size_t n) {
  assert(level <= natural_length_);
  Bitstream out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(source_->next() < level);
  }
  return out;
}

Bitstream Sng::generate_value(double p, std::size_t n) {
  return generate(unipolar_level64(p, natural_length_), n);
}

}  // namespace sc::convert
