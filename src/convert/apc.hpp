/// \file apc.hpp
/// Accumulative parallel counter (APC), Ting & Hayes 2014 (paper ref [3]).
///
/// An APC adds k input bits per cycle into a binary accumulator.  Unlike the
/// MUX adder it loses no precision (the result has full log2(k*N) bits), at
/// the cost of an adder tree.  The paper cites APCs as the higher-precision
/// conversion alternative when quantization error matters.

#pragma once

#include <cstdint>
#include "common/span.hpp"
#include <vector>

#include "bitstream/bitstream.hpp"

namespace sc::convert {

/// Per-cycle accumulative parallel counter over k parallel inputs.
class Apc {
 public:
  explicit Apc(std::size_t inputs) : inputs_(inputs) {}

  /// Adds one cycle's worth of input bits.  bits.size() must equal inputs().
  void step(sc::span<const bool> bits);

  [[nodiscard]] std::size_t inputs() const { return inputs_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Average of the input values: sum / (inputs * cycles), in [0, 1].
  [[nodiscard]] double mean_value() const;
  /// Scaled sum matching the MUX adder's output convention, but exact.
  [[nodiscard]] double scaled_sum() const { return mean_value(); }

  void reset() {
    sum_ = 0;
    cycles_ = 0;
  }

 private:
  std::size_t inputs_;
  std::uint64_t sum_ = 0;
  std::uint64_t cycles_ = 0;
};

/// Whole-stream APC: exact sum of all 1s across the input streams.
/// All streams must share one length.  Returns sum / (k * N), the exact
/// scaled sum the MUX adder approximates.
double apc_scaled_sum(sc::span<const Bitstream> streams);

}  // namespace sc::convert
