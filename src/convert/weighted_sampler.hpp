/// \file weighted_sampler.hpp
/// Categorical (weighted) select-stream generation: the "weight decoder"
/// that drives MUX-tree weighted adders such as the Gaussian-blur kernel.
///
/// Given k integer weights summing to W, each cycle the sampler draws a
/// uniform value u in [0, W) from its random source and emits the category
/// whose cumulative-weight bucket contains u.  Over N cycles category i is
/// selected with probability w_i / W, which is what makes a k-to-1 MUX tree
/// compute the weighted average sum(w_i p_i) / W.
///
/// Correlation note: the MUX adder only needs its *select* stream to be
/// uncorrelated with the data streams; sharing one sampler across many MUX
/// trees (as the paper's tiled accelerator does) is free in accuracy but
/// positively correlates the trees' outputs - the effect the §IV pipeline
/// exploits and the synchronizer then finishes off.

#pragma once

#include <cstdint>
#include "common/span.hpp"
#include <vector>

#include "rng/random_source.hpp"

namespace sc::convert {

/// Per-cycle categorical sampler over integer weights.
class WeightedSampler {
 public:
  /// \param weights  per-category integer weights; sum must be >= 1 and,
  ///                 for unbiased sampling, should divide the source range
  ///                 (a power of two for comparator-friendly hardware).
  /// \param source   uniform source; owned.
  WeightedSampler(std::vector<std::uint32_t> weights,
                  rng::RandomSourcePtr source);

  /// Category index for this cycle, in [0, weights().size()).
  std::size_t step();

  /// Pre-draws `n` cycles of selections.
  std::vector<std::uint8_t> trace(std::size_t n);

  void reset() { source_->reset(); }

  [[nodiscard]] sc::span<const std::uint32_t> weights() const { return weights_; }
  [[nodiscard]] std::uint32_t total_weight() const { return total_; }

 private:
  std::vector<std::uint32_t> weights_;
  std::vector<std::uint32_t> cumulative_;  // exclusive prefix sums + total
  std::uint32_t total_;
  rng::RandomSourcePtr source_;
};

}  // namespace sc::convert
