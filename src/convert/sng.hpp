/// \file sng.hpp
/// Digital-to-stochastic (D/S) converter: the comparator-based stochastic
/// number generator of paper Fig. 2g.
///
/// Each cycle the SNG compares its RNG value r in [0, 2^w) against the
/// binary level x in [0, 2^w] and emits the bit (r < x).  Over one full RNG
/// period the stream value is x / 2^w; with a low-discrepancy source (VDC,
/// Sobol) the value is exact for *every* prefix-aligned length.
///
/// Correlation between two SNG outputs is inherited from their sources: the
/// same source gives SCC = +1, independent sources give SCC near 0.

#pragma once

#include <cstdint>

#include "bitstream/bitstream.hpp"
#include "rng/random_source.hpp"

namespace sc::convert {

/// Comparator SNG bound to an owned random source.
class Sng {
 public:
  /// Takes ownership of the source.  Stream length N is 2^source->width()
  /// unless overridden per call.
  explicit Sng(rng::RandomSourcePtr source);

  /// Natural stream length: 2^width (one full source period).  64-bit
  /// because a 32-bit-wide source's period, 2^32, does not fit uint32 (a
  /// narrower counter silently wrapped to 0 and generated all-zero
  /// streams).
  [[nodiscard]] std::uint64_t natural_length() const { return natural_length_; }

  /// Emits one bit for level x in [0, natural_length()].
  bool step(std::uint64_t level) { return source_->next() < level; }

  /// Generates a length-n stream for integer level x in [0, natural_length()].
  /// Does not reset the source first (streams generated back-to-back continue
  /// the sequence); call reset() for a fresh period.
  Bitstream generate(std::uint64_t level, std::size_t n);

  /// Generates a stream for a real value p in [0,1], quantized to the
  /// nearest representable level of natural_length().
  Bitstream generate_value(double p, std::size_t n);

  /// Restarts the underlying source.
  void reset() { source_->reset(); }

  const rng::RandomSource& source() const { return *source_; }
  rng::RandomSource& source() { return *source_; }

 private:
  rng::RandomSourcePtr source_;
  std::uint64_t natural_length_;
};

}  // namespace sc::convert
