#include "convert/sd_converter.hpp"

namespace sc::convert {

std::uint64_t to_binary(const Bitstream& stream) { return stream.count_ones(); }

}  // namespace sc::convert
