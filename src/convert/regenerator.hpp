/// \file regenerator.hpp
/// Regeneration: the expensive baseline correlation "reset" the paper's
/// circuits replace (paper §II-B, Ting & Hayes ICCD 2016).
///
/// A regenerator converts a stream back to binary with an S/D counter and
/// re-encodes it with a D/S converter.  The re-encoded stream's correlation
/// with any other stream is then dictated purely by the D/S RNGs: sharing
/// one RNG across all regenerated streams yields SCC = +1 between them;
/// distinct low-discrepancy RNGs yield SCC near 0.
///
/// Regeneration needs the full stream before it can emit (the counter must
/// finish), so in hardware it also doubles latency; the cost model accounts
/// an S/D counter + D/S comparator + (amortized) RNG per regenerated stream.

#pragma once

#include <vector>

#include "bitstream/bitstream.hpp"
#include "convert/sng.hpp"
#include "rng/random_source.hpp"

namespace sc::convert {

/// Regenerates one stream: S/D count, then D/S re-encode with `source`.
/// The output has the same length and (exactly) the same number of 1s as the
/// input iff the source is a full-period permutation source (VDC, counter);
/// otherwise the value matches in expectation.
Bitstream regenerate(const Bitstream& input, rng::RandomSource& source);

/// Regenerates a whole bus of streams from a single shared RNG, which is the
/// paper's "induce positive correlation between all SNs" configuration: all
/// outputs are pairwise SCC = +1.
std::vector<Bitstream> regenerate_bus_correlated(
    const std::vector<Bitstream>& inputs, rng::RandomSource& shared_source);

/// Regenerates a bus with an independent clone-with-offset source per stream
/// (decorrelating regeneration).
std::vector<Bitstream> regenerate_bus_uncorrelated(
    const std::vector<Bitstream>& inputs,
    const std::vector<rng::RandomSource*>& sources);

}  // namespace sc::convert
