#include "convert/weighted_sampler.hpp"

#include <cassert>
#include <numeric>

namespace sc::convert {

WeightedSampler::WeightedSampler(std::vector<std::uint32_t> weights,
                                 rng::RandomSourcePtr source)
    : weights_(std::move(weights)), source_(std::move(source)) {
  assert(!weights_.empty());
  assert(source_ != nullptr);
  cumulative_.reserve(weights_.size());
  std::uint32_t running = 0;
  for (std::uint32_t w : weights_) {
    running += w;
    cumulative_.push_back(running);
  }
  total_ = running;
  assert(total_ >= 1);
  assert(total_ <= source_->range());
}

std::size_t WeightedSampler::step() {
  // Reduce the uniform draw into [0, total). When total divides the source
  // range the modulo is exact; the 9-slot binomial kernel uses total = 16
  // against an 8-bit source, for example.
  const std::uint32_t u =
      static_cast<std::uint32_t>(source_->next() % total_);
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return i;
  }
  return cumulative_.size() - 1;  // unreachable for valid u
}

std::vector<std::uint8_t> WeightedSampler::trace(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(step());
  }
  return out;
}

}  // namespace sc::convert
