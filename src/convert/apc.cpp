#include "convert/apc.hpp"

#include <cassert>

namespace sc::convert {

void Apc::step(sc::span<const bool> bits) {
  assert(bits.size() == inputs_);
  for (bool b : bits) sum_ += b ? 1u : 0u;
  ++cycles_;
}

double Apc::mean_value() const {
  if (cycles_ == 0 || inputs_ == 0) return 0.0;
  // The bit-cycle denominator is formed in floating point: the integer
  // product inputs_ * cycles_ can wrap for wide counters driven at
  // engine-scale cycle counts, and a wrapped denominator silently
  // corrupts the mean instead of losing a little precision.
  return static_cast<double>(sum_) /
         (static_cast<double>(inputs_) * static_cast<double>(cycles_));
}

double apc_scaled_sum(sc::span<const Bitstream> streams) {
  if (streams.empty()) return 0.0;
  const std::size_t n = streams.front().size();
  std::uint64_t total = 0;
  for (const Bitstream& s : streams) {
    assert(s.size() == n);
    total += s.count_ones();
  }
  if (n == 0) return 0.0;
  // Same deliberate floating-point denominator as Apc::mean_value: k * N
  // overflows size_t for long-stream batch sweeps on 32-bit targets.
  return static_cast<double>(total) /
         (static_cast<double>(streams.size()) * static_cast<double>(n));
}

}  // namespace sc::convert
